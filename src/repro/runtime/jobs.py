"""Sharded, resumable jobs over the experiment store.

A *job* is any task grid -- the (application x dataset) profile grid, a
design-space cross-product, or the table suite -- sharded into
content-addressed *work units* whose states persist in the SQLite run
store (:mod:`repro.runtime.runstore`, schema version 2). Each unit is a
self-contained JSON payload any worker can execute: in process, in a pool
worker, or in a ``repro-eval worker`` subprocess on another machine (see
:mod:`repro.runtime.executors`). The lifecycle::

    spec = JobSpec.profile_grid(apps=["spmv-csr", "bfs"], context=context)
    with JobStore() as store:
        job = store.submit(spec)            # idempotent: same spec -> same job
        store.run_job(job.id, executor)     # executes only non-done units

Because both the job spec key and every unit key hash the task
coordinates *and* the code fingerprint, a killed sweep resumes exactly:
``submit`` finds the existing job, ``run_job`` resets stale ``running``
units to ``pending`` and skips every ``done`` unit, so completed work is
never re-executed and the outputs (profile-cache entries written by the
workers) are byte-identical to a single-process run.

Unit kinds are pluggable via :func:`register_unit_kind`; the built-in
kinds are ``profile`` (one registry cell, served from / stored to the
content-addressed profile cache), ``throughput`` (one SpMU calibration
microbenchmark, persisted in the throughput store), ``dse_chunk`` (a
budget-planned slice of a sweep cross-product costed to gmean cycles and
area), ``table`` (one paper-table harness), and ``probe`` (a synthetic
unit used by the executor conformance tests and smoke sweeps).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CapstanError
from . import registry
from .cache import (
    ProfileCache,
    cache_enabled,
    code_fingerprint,
    profile_from_dict,
    profile_to_dict,
)
from .registry import RunContext
from .runstore import RunStore, _utc_now
from .sweep import axis_value_to_json, parse_axis_value

#: Work-unit states persisted in the ``work_units`` table.
UNIT_PENDING = "pending"
UNIT_RUNNING = "running"
UNIT_DONE = "done"
UNIT_FAILED = "failed"

#: Job states persisted in the ``jobs`` table.
JOB_PENDING = "pending"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: Default ceiling on variants per DSE work unit (resumability granularity
#: when no memory budget imposes a smaller chunk).
DEFAULT_DSE_CHUNK = 64


class JobError(CapstanError):
    """Raised for malformed job specs, unknown kinds, or missing jobs."""


# --------------------------------------------------------------- contexts


def context_to_dict(context: RunContext) -> Dict[str, Any]:
    """Serialize a :class:`RunContext` to a JSON-able dict (lossless)."""
    material: Dict[str, Any] = {
        "scale": context.scale,
        "pagerank_iterations": context.pagerank_iterations,
        "conv_scale": context.conv_scale,
        "backend": context.backend,
    }
    if context.scanner is not None:
        material["scanner"] = dataclasses.asdict(context.scanner)
    return material


def context_from_dict(data: Optional[Dict[str, Any]]) -> RunContext:
    """Rebuild a :class:`RunContext` from :func:`context_to_dict` output."""
    data = dict(data or {})
    scanner = data.pop("scanner", None)
    if scanner is not None:
        from ..config import ScannerConfig

        scanner = ScannerConfig(**scanner)
    known = {f.name for f in dataclasses.fields(RunContext)}
    unknown = set(data) - known
    if unknown:
        raise JobError(f"unknown RunContext fields in payload: {sorted(unknown)}")
    return RunContext(scanner=scanner, **data)


# ------------------------------------------------------------- unit kinds


@dataclasses.dataclass(frozen=True)
class UnitKind:
    """One executable unit kind: how to run it and (de)serialize results."""

    name: str
    execute: Callable[[Dict[str, Any]], Any]
    serialize: Callable[[Any], Any]
    deserialize: Callable[[Any], Any]


_KINDS: Dict[str, UnitKind] = {}


def register_unit_kind(
    name: str,
    execute: Callable[[Dict[str, Any]], Any],
    *,
    serialize: Optional[Callable[[Any], Any]] = None,
    deserialize: Optional[Callable[[Any], Any]] = None,
) -> UnitKind:
    """Register one unit kind (``serialize``/``deserialize`` default to identity).

    Note that subprocess workers only know the kinds registered at import
    time of :mod:`repro.runtime.jobs`; ad-hoc kinds registered by tests
    run on the in-process executors.
    """
    kind = UnitKind(
        name=name,
        execute=execute,
        serialize=serialize or (lambda result: result),
        deserialize=deserialize or (lambda result: result),
    )
    _KINDS[name] = kind
    return kind


def unit_kind(name: str) -> UnitKind:
    """Look up one registered kind (raises :class:`JobError`)."""
    try:
        return _KINDS[name]
    except KeyError:
        known = ", ".join(sorted(_KINDS)) or "<none>"
        raise JobError(f"unknown work-unit kind {name!r}; registered: {known}") from None


def execute_unit(payload: Dict[str, Any]) -> Any:
    """Execute one work-unit payload and return its (native) result.

    This is the single entry point every executor drives -- in process,
    from a pool worker, or behind ``repro-eval worker``.
    """
    if not isinstance(payload, dict) or "kind" not in payload:
        raise JobError(f"work-unit payload needs a 'kind' field, got {payload!r}")
    return unit_kind(payload["kind"]).execute(payload)


def serialize_result(kind: str, result: Any) -> Any:
    """The JSON form of one unit result (for ``result_json`` / the wire)."""
    return unit_kind(kind).serialize(result)


def deserialize_result(kind: str, data: Any) -> Any:
    """Rebuild one unit result from its JSON form."""
    return unit_kind(kind).deserialize(data)


# ------------------------------------------------------- built-in kinds


def _execute_profile(payload: Dict[str, Any]) -> Any:
    """Run one (app, dataset) cell, served from / stored to the profile cache."""
    app = payload["app"]
    dataset = payload["dataset"]
    context = context_from_dict(payload.get("context"))
    cache: Optional[ProfileCache] = None
    key: Optional[str] = None
    if payload.get("cache", True) and cache_enabled():
        root = payload.get("cache_root")
        cache = ProfileCache(root=Path(root)) if root else ProfileCache()
        fields = registry.get_spec(app).context_fields
        key = cache.key(app, dataset, context, context_fields=fields)
        hit = cache.load(key)
        if hit is not None:
            return hit
    profile = registry.execute(app, dataset, context)
    if cache is not None and key is not None:
        cache.store(key, profile)
    return profile


def _execute_throughput(payload: Dict[str, Any]) -> float:
    """Run one SpMU calibration microbenchmark (persists to its store)."""
    from ..config import SpMUConfig
    from ..core.ordering import OrderingMode
    from ..core.spmu import effective_bank_throughput

    config = SpMUConfig(**payload.get("config", {}))
    return float(
        effective_bank_throughput(
            ordering=OrderingMode(payload.get("ordering", "unordered")),
            bank_mapping=payload.get("bank_mapping", "hash"),
            allocator_kind=payload.get("allocator", "separable"),
            config=config,
            lanes=int(payload.get("lanes", 16)),
        )
    )


def _execute_dse_chunk(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Cost one contiguous slice of a sweep cross-product.

    Profiles come through the cached :class:`ExperimentRunner` (serial --
    the parallelism axis of a DSE job is its units, not a nested pool), so
    every chunk of the same job reuses the same cached profile set.
    """
    from ..apps.timing import estimate_cycles_batch
    from ..core.area import capstan_area
    from ..sim.stats import geometric_mean
    from .runner import ExperimentRunner
    from .sweep import sweep

    axes = {
        axis: [parse_axis_value(axis, value) for value in values]
        for axis, values in payload["axes"].items()
    }
    variants = sweep(**axes)
    names = list(variants)
    chunk_names = names[payload["start"] : payload["stop"]]
    platforms = [variants[name] for name in chunk_names]
    for platform in platforms:
        platform.config.validate()
    context = context_from_dict(payload.get("context"))
    runner = ExperimentRunner(context=context, workers=1, cache=payload.get("cache", True))
    report = runner.run(apps=payload.get("apps"))
    profiles = [r.profile for r in report.results if r.profile is not None]
    batch = estimate_cycles_batch(profiles, platforms)
    gmeans = [
        geometric_mean([float(c) for c in batch.cycles[:, j]])
        for j in range(len(platforms))
    ]
    return {
        "names": list(chunk_names),
        "gmean_cycles": [float(g) for g in gmeans],
        "area_mm2": [float(capstan_area(p.config).total_mm2) for p in platforms],
    }


def _table_functions() -> Dict[str, Callable[..., Any]]:
    """The paper-table harness callables by short name (``table4`` ...)."""
    from ..eval import tables as tables_module

    found: Dict[str, Callable[..., Any]] = {}
    for attr in dir(tables_module):
        if attr.startswith("table"):
            short = attr.split("_", 1)[0]
            found[short] = getattr(tables_module, attr)
    return found


def _execute_table(payload: Dict[str, Any]) -> Any:
    """Render one paper table (profiles collected through the cache)."""
    import inspect

    from .cache import _json_default

    functions = _table_functions()
    name = payload["table"]
    if name not in functions:
        raise JobError(f"unknown table {name!r}; known: {', '.join(sorted(functions))}")
    fn = functions[name]
    kwargs: Dict[str, Any] = {}
    if "profiles" in inspect.signature(fn).parameters and payload.get("scale") is not None:
        from ..eval.experiments import collect_profiles

        kwargs["profiles"] = collect_profiles(scale=float(payload["scale"]))
    result = fn(**kwargs)
    # Normalize numpy scalars so the result is JSON-able for result_json.
    return json.loads(json.dumps(result, default=_json_default))


def _execute_probe(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Synthetic unit for conformance tests and executor smoke runs.

    Payload fields: ``value`` (echoed back doubled), ``sleep_s`` (work
    stand-in, exercises timeouts), ``fail_times`` + ``scratch`` (raise
    until the scratch directory shows that many prior attempts, exercising
    retries across process boundaries -- each execution drops one marker
    file), ``boom`` (always raise).
    """
    attempt = 0
    scratch = payload.get("scratch")
    if scratch:
        root = Path(scratch)
        root.mkdir(parents=True, exist_ok=True)
        marker = root / f"attempt-{os.getpid()}-{time.monotonic_ns()}"
        marker.write_text("")
        attempt = len(list(root.glob("attempt-*")))
    sleep_s = float(payload.get("sleep_s", 0.0))
    if sleep_s > 0:
        time.sleep(sleep_s)
    if payload.get("boom"):
        raise JobError(str(payload.get("boom")))
    fail_times = int(payload.get("fail_times", 0))
    if fail_times and attempt <= fail_times:
        raise JobError(f"probe failing on attempt {attempt} of {fail_times}")
    value = payload.get("value")
    return {
        "value": None if value is None else value * 2,
        "attempt": attempt,
        "pid": os.getpid(),
    }


register_unit_kind(
    "profile",
    _execute_profile,
    serialize=profile_to_dict,
    deserialize=profile_from_dict,
)
register_unit_kind("throughput", _execute_throughput)
register_unit_kind("dse_chunk", _execute_dse_chunk)
register_unit_kind("table", _execute_table)
register_unit_kind("probe", _execute_probe)


# ------------------------------------------------------------- job specs


def _unit_key(material: Dict[str, Any]) -> str:
    """Content address of one unit: its material plus the code fingerprint."""
    material = dict(material)
    material["code"] = code_fingerprint()
    return hashlib.sha256(json.dumps(material, sort_keys=True).encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One shard of a job: a content-addressed, executable payload."""

    key: str
    kind: str
    payload: Dict[str, Any]


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """A named, ordered collection of work units.

    The spec ``key`` hashes the name and every unit key, so the same grid
    at the same code version resolves to the same job row -- submitting it
    twice resumes rather than duplicates.
    """

    name: str
    units: Tuple[WorkUnit, ...]

    @property
    def key(self) -> str:
        material = {"name": self.name, "units": [unit.key for unit in self.units]}
        return hashlib.sha256(json.dumps(material, sort_keys=True).encode()).hexdigest()

    @staticmethod
    def profile_grid(
        apps: Optional[Sequence[str]] = None,
        context: Optional[RunContext] = None,
        *,
        cache_root: Optional[Union[str, Path]] = None,
        name: str = "profile-grid",
    ) -> "JobSpec":
        """Shard the (application x dataset) grid, one cell per unit.

        Workers write straight into the content-addressed profile cache
        (``cache_root`` overrides its location), so a completed job's
        output is exactly the warm cache a single-process run would leave.
        """
        context = context or RunContext()
        names = list(apps) if apps is not None else list(registry.app_order())
        context_dict = context_to_dict(context)
        keyer = ProfileCache(root=Path(cache_root)) if cache_root else ProfileCache()
        units: List[WorkUnit] = []
        for app in names:
            spec = registry.get_spec(app)
            for dataset in spec.datasets:
                payload: Dict[str, Any] = {
                    "kind": "profile",
                    "app": app,
                    "dataset": dataset,
                    "context": context_dict,
                }
                if cache_root:
                    payload["cache_root"] = str(cache_root)
                # The profile-cache key *is* the unit's content address:
                # done unit <=> its output exists in the cache.
                key = keyer.key(app, dataset, context, context_fields=spec.context_fields)
                units.append(WorkUnit(key=key, kind="profile", payload=payload))
        if not units:
            raise JobError("profile grid resolved to zero units")
        return JobSpec(name=name, units=tuple(units))

    @staticmethod
    def dse_grid(
        axes: Dict[str, Sequence[Any]],
        *,
        apps: Optional[Sequence[str]] = None,
        context: Optional[RunContext] = None,
        memory_budget: Optional[int] = None,
        max_chunk: int = DEFAULT_DSE_CHUNK,
        name: str = "dse-grid",
    ) -> "JobSpec":
        """Shard a sweep cross-product into budget-planned variant chunks.

        The chunk size comes from the PR 6 budget planner: one chunk's
        (profile x variant) costing working set fits ``memory_budget``
        (``REPRO_MEMORY_BUDGET`` honored), capped at ``max_chunk`` variants
        so even unbudgeted jobs stay resumable at useful granularity.
        """
        from .._budget import plan_chunks, resolve_memory_budget
        from ..apps.timing import COSTING_BYTES_PER_CELL
        from .sweep import sweep

        parsed = {
            axis: [parse_axis_value(axis, value) for value in values]
            for axis, values in axes.items()
        }
        variants = sweep(**parsed)
        for platform in variants.values():
            platform.config.validate()
        context = context or RunContext()
        app_names = list(apps) if apps is not None else list(registry.app_order())
        cells = sum(len(registry.get_spec(app).datasets) for app in app_names)
        plan = plan_chunks(
            len(variants),
            cells * COSTING_BYTES_PER_CELL,
            resolve_memory_budget(memory_budget),
            max_items=max_chunk,
        )
        axes_json = {
            axis: [axis_value_to_json(value) for value in values]
            for axis, values in parsed.items()
        }
        context_dict = context_to_dict(context)
        units: List[WorkUnit] = []
        for start, stop in plan.bounds():
            payload = {
                "kind": "dse_chunk",
                "axes": axes_json,
                "start": int(start),
                "stop": int(stop),
                "apps": None if apps is None else list(apps),
                "context": context_dict,
            }
            key = _unit_key(payload)
            units.append(WorkUnit(key=key, kind="dse_chunk", payload=payload))
        if not units:
            raise JobError("DSE grid resolved to zero units")
        return JobSpec(name=name, units=tuple(units))

    @staticmethod
    def table_suite(
        tables: Optional[Sequence[str]] = None,
        *,
        scale: Optional[float] = None,
        name: str = "table-suite",
    ) -> "JobSpec":
        """Shard the paper-table suite, one table harness per unit."""
        known = sorted(_table_functions())
        chosen = list(tables) if tables is not None else known
        unknown = set(chosen) - set(known)
        if unknown:
            raise JobError(f"unknown tables: {', '.join(sorted(unknown))}")
        units = []
        for table in chosen:
            payload: Dict[str, Any] = {"kind": "table", "table": table}
            if scale is not None:
                payload["scale"] = float(scale)
            units.append(WorkUnit(key=_unit_key(payload), kind="table", payload=payload))
        return JobSpec(name=name, units=tuple(units))

    @staticmethod
    def probes(
        count: int,
        *,
        sleep_s: float = 0.0,
        scratch: Optional[Union[str, Path]] = None,
        name: str = "probe",
    ) -> "JobSpec":
        """A synthetic job of ``count`` probe units (smoke tests, demos)."""
        units = []
        for i in range(count):
            payload: Dict[str, Any] = {"kind": "probe", "value": i}
            if sleep_s:
                payload["sleep_s"] = sleep_s
            if scratch:
                payload["scratch"] = str(Path(scratch) / f"unit-{i}")
            units.append(WorkUnit(key=_unit_key(payload), kind="probe", payload=payload))
        return JobSpec(name=name, units=tuple(units))


# -------------------------------------------------------------- job store


@dataclasses.dataclass(frozen=True)
class JobRecord:
    """One persisted job row."""

    id: int
    key: str
    name: str
    created_at: str
    updated_at: str
    state: str
    executor: Optional[str]
    workers: Optional[int]

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class UnitRecord:
    """One persisted work-unit row."""

    job_id: int
    seq: int
    key: str
    kind: str
    payload: Dict[str, Any]
    state: str
    attempts: int
    duration_s: Optional[float]
    error: Optional[str]
    result_json: Optional[str]

    def result(self) -> Any:
        """The deserialized unit result (``None`` unless done)."""
        if self.result_json is None:
            return None
        return deserialize_result(self.kind, json.loads(self.result_json))


@dataclasses.dataclass(frozen=True)
class JobRunSummary:
    """What one :meth:`JobStore.run_job` call did."""

    job_id: int
    state: str
    executed: int
    completed: int
    failed: int
    cancelled: int
    remaining: int
    counts: Dict[str, int]
    wall_time_s: float

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class JobStore:
    """Job and work-unit persistence over the run-store database.

    Shares the :class:`~repro.runtime.runstore.RunStore` connection (WAL,
    versioned schema); pass an existing store to compose, or a path to own
    one. All unit selections are ordered by ``seq``, so execution and
    reporting follow deterministic grid order.
    """

    def __init__(self, path: Optional[Path] = None, *, store: Optional[RunStore] = None):
        if store is not None:
            self._store = store
            self._owns_store = False
        else:
            self._store = RunStore(path)
            self._owns_store = True
        self._connection = self._store.connection

    @property
    def path(self) -> Path:
        return self._store.path

    def close(self) -> None:
        if self._owns_store:
            self._store.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ writes

    def submit(self, spec: JobSpec) -> JobRecord:
        """Insert a job for ``spec``, or return the existing one (resume)."""
        existing = self.job_by_key(spec.key)
        if existing is not None:
            return existing
        now = _utc_now()
        with self._connection:
            cursor = self._connection.execute(
                "INSERT INTO jobs (key, name, created_at, updated_at, state)"
                " VALUES (?,?,?,?,?)",
                (spec.key, spec.name, now, now, JOB_PENDING),
            )
            job_id = int(cursor.lastrowid)
            self._connection.executemany(
                "INSERT INTO work_units (job_id, seq, key, kind, payload_json, state)"
                " VALUES (?,?,?,?,?,?)",
                [
                    (
                        job_id,
                        seq,
                        unit.key,
                        unit.kind,
                        json.dumps(unit.payload, sort_keys=True),
                        UNIT_PENDING,
                    )
                    for seq, unit in enumerate(spec.units)
                ],
            )
        job = self.job(job_id)
        assert job is not None
        return job

    def reset_stale_running(self, job_id: int) -> int:
        """Reset ``running`` units to ``pending`` (recovery after a kill).

        A unit can only be legitimately ``running`` while some process is
        inside :meth:`run_job`; rows still marked ``running`` at the start
        of a new run are orphans of a dead sweep.
        """
        with self._connection:
            cursor = self._connection.execute(
                "UPDATE work_units SET state=? WHERE job_id=? AND state=?",
                (UNIT_PENDING, job_id, UNIT_RUNNING),
            )
        return cursor.rowcount

    def run_job(
        self,
        job_id: int,
        executor: Any,
        *,
        max_units: Optional[int] = None,
        stop_on_error: bool = False,
    ) -> JobRunSummary:
        """Execute the job's claimable units (pending or failed) in order.

        Args:
            job_id: The job to advance.
            executor: Any :class:`~repro.runtime.executors.base.Executor`.
            max_units: Process at most this many units, then return with
                the job still resumable (deterministic partial progress --
                also the seam the kill/resume tests and smoke sweep use).
            stop_on_error: Forwarded to the executor: cancel outstanding
                units after the first failure instead of finishing the
                batch.

        Returns:
            A :class:`JobRunSummary`; ``remaining`` counts units still
            claimable afterwards (a resumed call picks exactly those up).

        Units are dispatched in waves of ``executor.workers`` and every
        wave's outcomes are committed before the next one starts, so a
        killed run can only ever lose in-flight work -- completed units are
        durable and are never re-executed on resume.
        """
        started = time.perf_counter()
        job = self.job(job_id)
        if job is None:
            raise JobError(f"no job {job_id} in {self.path}")
        self.reset_stale_running(job_id)
        claimable = self.claimable_units(job_id)
        selected = claimable if max_units is None else claimable[: max(0, max_units)]
        completed = failed = cancelled = 0
        processed = 0
        if selected:
            with self._connection:
                self._connection.executemany(
                    "UPDATE work_units SET state=? WHERE job_id=? AND seq=?",
                    [(UNIT_RUNNING, job_id, unit.seq) for unit in selected],
                )
                self._connection.execute(
                    "UPDATE jobs SET state=?, executor=?, workers=?, updated_at=?"
                    " WHERE id=?",
                    (
                        JOB_RUNNING,
                        getattr(executor, "name", type(executor).__name__),
                        getattr(executor, "workers", None),
                        _utc_now(),
                        job_id,
                    ),
                )
            wave_size = max(1, int(getattr(executor, "workers", 1) or 1))
            halt = False
            while processed < len(selected) and not halt:
                wave = selected[processed : processed + wave_size]
                outcomes = executor.run_units(
                    [unit.payload for unit in wave], stop_on_error=stop_on_error
                )
                with self._connection:
                    for unit, outcome in zip(wave, outcomes):
                        if outcome.status == "ok":
                            completed += 1
                            state: str = UNIT_DONE
                            error = None
                            result_json = json.dumps(
                                serialize_result(unit.kind, outcome.result), sort_keys=True
                            )
                        elif outcome.status == "cancelled":
                            cancelled += 1
                            state, error, result_json = UNIT_PENDING, None, None
                        else:
                            failed += 1
                            state = UNIT_FAILED
                            error = outcome.error or outcome.status
                            result_json = None
                        self._connection.execute(
                            "UPDATE work_units SET state=?, attempts=attempts+?,"
                            " duration_s=?, error=?, result_json=?"
                            " WHERE job_id=? AND seq=?",
                            (
                                state,
                                outcome.attempts,
                                outcome.duration_s,
                                error,
                                result_json,
                                job_id,
                                unit.seq,
                            ),
                        )
                processed += len(wave)
                if any(outcome.status == "cancelled" for outcome in outcomes):
                    halt = True  # executor was cancelled; leave the rest pending
                if stop_on_error and any(
                    outcome.status not in ("ok", "cancelled") for outcome in outcomes
                ):
                    halt = True
            leftover = selected[processed:]
            if leftover:
                cancelled += len(leftover)
                with self._connection:
                    self._connection.executemany(
                        "UPDATE work_units SET state=? WHERE job_id=? AND seq=?",
                        [(UNIT_PENDING, job_id, unit.seq) for unit in leftover],
                    )
        counts = self.unit_states(job_id)
        remaining = counts.get(UNIT_PENDING, 0) + counts.get(UNIT_FAILED, 0)
        if counts.get(UNIT_DONE, 0) == sum(counts.values()):
            state = JOB_DONE
        elif counts.get(UNIT_FAILED, 0) and not counts.get(UNIT_PENDING, 0):
            state = JOB_FAILED
        else:
            state = JOB_PENDING
        with self._connection:
            self._connection.execute(
                "UPDATE jobs SET state=?, updated_at=? WHERE id=?",
                (state, _utc_now(), job_id),
            )
        return JobRunSummary(
            job_id=job_id,
            state=state,
            executed=processed,
            completed=completed,
            failed=failed,
            cancelled=cancelled,
            remaining=remaining,
            counts=counts,
            wall_time_s=time.perf_counter() - started,
        )

    # ------------------------------------------------------------- reads

    @staticmethod
    def _job_from_row(row) -> JobRecord:
        return JobRecord(
            id=row["id"],
            key=row["key"],
            name=row["name"],
            created_at=row["created_at"],
            updated_at=row["updated_at"],
            state=row["state"],
            executor=row["executor"],
            workers=row["workers"],
        )

    @staticmethod
    def _unit_from_row(row) -> UnitRecord:
        return UnitRecord(
            job_id=row["job_id"],
            seq=row["seq"],
            key=row["key"],
            kind=row["kind"],
            payload=json.loads(row["payload_json"]),
            state=row["state"],
            attempts=row["attempts"],
            duration_s=row["duration_s"],
            error=row["error"],
            result_json=row["result_json"],
        )

    def job(self, job_id: int) -> Optional[JobRecord]:
        row = self._connection.execute(
            "SELECT * FROM jobs WHERE id=?", (job_id,)
        ).fetchone()
        return None if row is None else self._job_from_row(row)

    def job_by_key(self, key: str) -> Optional[JobRecord]:
        row = self._connection.execute(
            "SELECT * FROM jobs WHERE key=?", (key,)
        ).fetchone()
        return None if row is None else self._job_from_row(row)

    def jobs(self, limit: Optional[int] = None) -> List[JobRecord]:
        """All jobs, newest first."""
        query = "SELECT * FROM jobs ORDER BY id DESC"
        parameters: List[Any] = []
        if limit is not None:
            query += " LIMIT ?"
            parameters.append(limit)
        rows = self._connection.execute(query, parameters).fetchall()
        return [self._job_from_row(row) for row in rows]

    def units(self, job_id: int, state: Optional[str] = None) -> List[UnitRecord]:
        """The job's units in grid (``seq``) order, optionally one state."""
        query = "SELECT * FROM work_units WHERE job_id=?"
        parameters: List[Any] = [job_id]
        if state is not None:
            query += " AND state=?"
            parameters.append(state)
        query += " ORDER BY seq"
        rows = self._connection.execute(query, parameters).fetchall()
        return [self._unit_from_row(row) for row in rows]

    def claimable_units(self, job_id: int) -> List[UnitRecord]:
        """Units still needing execution: pending, plus failed (retried)."""
        rows = self._connection.execute(
            "SELECT * FROM work_units WHERE job_id=? AND state IN (?,?) ORDER BY seq",
            (job_id, UNIT_PENDING, UNIT_FAILED),
        ).fetchall()
        return [self._unit_from_row(row) for row in rows]

    def unit_states(self, job_id: int) -> Dict[str, int]:
        """Unit counts by state, e.g. ``{"done": 30, "pending": 3}``."""
        rows = self._connection.execute(
            "SELECT state, COUNT(*) AS n FROM work_units WHERE job_id=? GROUP BY state",
            (job_id,),
        ).fetchall()
        return {row["state"]: row["n"] for row in rows}

    def results(self, job_id: int) -> List[Tuple[UnitRecord, Any]]:
        """(unit, deserialized result) for every done unit, in grid order."""
        return [
            (unit, unit.result()) for unit in self.units(job_id, state=UNIT_DONE)
        ]
