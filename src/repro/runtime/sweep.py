"""Declarative platform sweeps for the sensitivity studies.

Every sensitivity table costs the same profiles under a family of
:class:`~repro.apps.timing.CapstanPlatform` variants that differ along one
or two architectural axes. :func:`sweep` generates such a family from a
base platform and keyword axes, e.g.::

    sweep(allocator=("separable", "greedy"), bank_mapping=("hash", "linear"))

yields the four combinations in cartesian order (first axis outermost),
named ``separable-hash`` .. ``greedy-linear`` unless a ``name`` callable is
given. Supported axes:

* ``ordering`` -- :class:`~repro.core.ordering.OrderingMode` (Table 10);
* ``bank_mapping`` / ``allocator`` / ``ideal_sram`` -- SpMU variants
  (Table 9);
* ``memory`` -- :class:`~repro.config.MemoryTechnology` (Table 12);
* ``shuffle`` -- :class:`~repro.config.ShuffleMode` (Table 11).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from enum import Enum
from typing import Any, Callable, Dict, Iterable, Optional

from ..apps.timing import CapstanPlatform
from ..config import MemoryTechnology, ShuffleMode
from ..errors import ConfigurationError

#: Axes applied by replacing a CapstanPlatform field directly.
_PLATFORM_FIELDS = ("ordering", "bank_mapping", "allocator", "ideal_sram")


def _apply_axis(platform: CapstanPlatform, axis: str, value: Any) -> CapstanPlatform:
    if axis in _PLATFORM_FIELDS:
        return replace(platform, **{axis: value})
    if axis == "memory":
        if not isinstance(value, MemoryTechnology):
            raise ConfigurationError(f"memory axis takes MemoryTechnology, got {value!r}")
        return replace(platform, config=platform.config.with_memory(value))
    if axis == "shuffle":
        if not isinstance(value, ShuffleMode):
            raise ConfigurationError(f"shuffle axis takes ShuffleMode, got {value!r}")
        return replace(platform, config=platform.config.with_shuffle_mode(value))
    raise ConfigurationError(
        f"unknown sweep axis {axis!r}; known: {', '.join(_PLATFORM_FIELDS + ('memory', 'shuffle'))}"
    )


def _default_name(combo: Dict[str, Any]) -> str:
    parts = []
    for value in combo.values():
        if isinstance(value, Enum):
            parts.append(str(value.value))
        else:
            parts.append(str(value))
    return "-".join(parts)


def sweep(
    base: Optional[CapstanPlatform] = None,
    *,
    name: Optional[Callable[[Dict[str, Any]], str]] = None,
    **axes: Iterable[Any],
) -> Dict[str, CapstanPlatform]:
    """Generate named platform variants over the cartesian product of axes.

    Args:
        base: Platform the variants are derived from (default design point).
        name: ``name(combo) -> str`` labelling each variant; defaults to
            joining the axis values with ``-``.
        **axes: One iterable of values per swept axis (see module docstring).

    Returns:
        ``{variant name: platform}`` in deterministic cartesian order, with
        each platform's ``name`` field set to its variant name.
    """
    if not axes:
        raise ConfigurationError("sweep() needs at least one axis")
    base = base if base is not None else CapstanPlatform()
    label = name or _default_name
    keys = list(axes)
    variants: Dict[str, CapstanPlatform] = {}
    for values in itertools.product(*(list(axes[k]) for k in keys)):
        combo = dict(zip(keys, values))
        platform = base
        for axis, value in combo.items():
            platform = _apply_axis(platform, axis, value)
        variant_name = label(combo)
        if variant_name in variants:
            raise ConfigurationError(f"duplicate sweep variant name {variant_name!r}")
        variants[variant_name] = replace(platform, name=variant_name)
    return variants
