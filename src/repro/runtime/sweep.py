"""Declarative platform sweeps for the sensitivity studies.

Every sensitivity table costs the same profiles under a family of
:class:`~repro.apps.timing.CapstanPlatform` variants that differ along one
or two architectural axes. :func:`sweep` generates such a family from a
base platform and keyword axes, e.g.::

    sweep(allocator=("separable", "greedy"), bank_mapping=("hash", "linear"))

yields the four combinations in cartesian order (first axis outermost),
named ``separable-hash`` .. ``greedy-linear`` unless a ``name`` callable is
given. Supported axes:

* ``ordering`` -- :class:`~repro.core.ordering.OrderingMode` (Table 10);
* ``bank_mapping`` / ``allocator`` / ``ideal_sram`` -- SpMU variants
  (Table 9);
* ``memory`` -- :class:`~repro.config.MemoryTechnology` (Table 12);
* ``shuffle`` -- :class:`~repro.config.ShuffleMode` (Table 11);
* ``lanes`` / ``compute_units`` -- structural
  :class:`~repro.config.CapstanConfig` fields (design-space exploration);
* ``banks`` / ``queue_depth`` / ``crossbar_inputs`` -- structural
  :class:`~repro.config.SpMUConfig` fields (design-space exploration).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from enum import Enum
from typing import Any, Callable, Dict, Iterable, Optional

from ..apps.timing import CapstanPlatform
from ..config import MemoryTechnology, ShuffleMode
from ..core.ordering import OrderingMode
from ..errors import ConfigurationError

#: Axes applied by replacing a CapstanPlatform field directly.
_PLATFORM_FIELDS = ("ordering", "bank_mapping", "allocator", "ideal_sram")

#: Legal values per string/bool platform field. A typo here would otherwise
#: be costed silently (the timing model coerces unknown allocators to
#: "greedy") or crash deep inside the bank mapper.
_PLATFORM_FIELD_VALUES = {
    "bank_mapping": ("hash", "linear"),
    "allocator": ("separable", "greedy", "arbitrated"),
    "ideal_sram": (True, False),
}

#: Axes applied by replacing a structural CapstanConfig field.
_CONFIG_FIELDS = ("lanes", "compute_units")

#: Axes applied by replacing a structural SpMUConfig field.
_SPMU_FIELDS = ("banks", "queue_depth", "crossbar_inputs")

#: Every supported axis name, for error messages.
KNOWN_AXES = _PLATFORM_FIELDS + ("memory", "shuffle") + _CONFIG_FIELDS + _SPMU_FIELDS


def _apply_axis(platform: CapstanPlatform, axis: str, value: Any) -> CapstanPlatform:
    if axis in _PLATFORM_FIELDS:
        if axis == "ordering":
            if not isinstance(value, OrderingMode):
                raise ConfigurationError(f"ordering axis takes OrderingMode, got {value!r}")
        else:
            allowed = _PLATFORM_FIELD_VALUES[axis]
            if value not in allowed:
                raise ConfigurationError(
                    f"{axis} axis takes one of {allowed}, got {value!r}"
                )
        return replace(platform, **{axis: value})
    if axis == "memory":
        if not isinstance(value, MemoryTechnology):
            raise ConfigurationError(f"memory axis takes MemoryTechnology, got {value!r}")
        return replace(platform, config=platform.config.with_memory(value))
    if axis == "shuffle":
        if not isinstance(value, ShuffleMode):
            raise ConfigurationError(f"shuffle axis takes ShuffleMode, got {value!r}")
        return replace(platform, config=platform.config.with_shuffle_mode(value))
    if axis in _CONFIG_FIELDS or axis in _SPMU_FIELDS:
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            raise ConfigurationError(f"{axis} axis takes positive integers, got {value!r}")
        if axis in _CONFIG_FIELDS:
            return replace(platform, config=replace(platform.config, **{axis: value}))
        spmu = replace(platform.config.spmu, **{axis: value})
        return replace(platform, config=replace(platform.config, spmu=spmu))
    raise ConfigurationError(f"unknown sweep axis {axis!r}; known: {', '.join(KNOWN_AXES)}")


def _default_name(combo: Dict[str, Any]) -> str:
    parts = []
    for value in combo.values():
        if isinstance(value, Enum):
            parts.append(str(value.value))
        else:
            parts.append(str(value))
    return "-".join(parts)


def sweep(
    base: Optional[CapstanPlatform] = None,
    *,
    name: Optional[Callable[[Dict[str, Any]], str]] = None,
    **axes: Iterable[Any],
) -> Dict[str, CapstanPlatform]:
    """Generate named platform variants over the cartesian product of axes.

    Args:
        base: Platform the variants are derived from (default design point).
        name: ``name(combo) -> str`` labelling each variant; defaults to
            joining the axis values with ``-``.
        **axes: One iterable of values per swept axis (see module docstring).

    Returns:
        ``{variant name: platform}`` in deterministic cartesian order, with
        each platform's ``name`` field set to its variant name.
    """
    if not axes:
        raise ConfigurationError("sweep() needs at least one axis")
    base = base if base is not None else CapstanPlatform()
    label = name or _default_name
    keys = list(axes)
    variants: Dict[str, CapstanPlatform] = {}
    for values in itertools.product(*(list(axes[k]) for k in keys)):
        combo = dict(zip(keys, values))
        platform = base
        for axis, value in combo.items():
            platform = _apply_axis(platform, axis, value)
        variant_name = label(combo)
        if variant_name in variants:
            raise ConfigurationError(f"duplicate sweep variant name {variant_name!r}")
        variants[variant_name] = replace(platform, name=variant_name)
    return variants
