"""Declarative platform sweeps for the sensitivity studies.

Every sensitivity table costs the same profiles under a family of
:class:`~repro.apps.timing.CapstanPlatform` variants that differ along one
or two architectural axes. :func:`sweep` generates such a family from a
base platform and keyword axes, e.g.::

    sweep(allocator=("separable", "greedy"), bank_mapping=("hash", "linear"))

yields the four combinations in cartesian order (first axis outermost),
named ``separable-hash`` .. ``greedy-linear`` unless a ``name`` callable is
given. Supported axes:

* ``ordering`` -- :class:`~repro.core.ordering.OrderingMode` (Table 10);
* ``bank_mapping`` / ``allocator`` / ``ideal_sram`` -- SpMU variants
  (Table 9);
* ``memory`` -- :class:`~repro.config.MemoryTechnology` (Table 12);
* ``shuffle`` -- :class:`~repro.config.ShuffleMode` (Table 11);
* ``lanes`` / ``compute_units`` -- structural
  :class:`~repro.config.CapstanConfig` fields (design-space exploration);
* ``banks`` / ``queue_depth`` / ``crossbar_inputs`` -- structural
  :class:`~repro.config.SpMUConfig` fields (design-space exploration).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from enum import Enum
from typing import Any, Callable, Dict, Iterable, Optional

from ..apps.timing import CapstanPlatform
from ..config import MemoryTechnology, ShuffleMode
from ..core.ordering import OrderingMode
from ..errors import ConfigurationError

#: Axes applied by replacing a CapstanPlatform field directly.
_PLATFORM_FIELDS = ("ordering", "bank_mapping", "allocator", "ideal_sram")

#: Legal values per string/bool platform field. A typo here would otherwise
#: be costed silently (the timing model coerces unknown allocators to
#: "greedy") or crash deep inside the bank mapper.
_PLATFORM_FIELD_VALUES = {
    "bank_mapping": ("hash", "linear"),
    "allocator": ("separable", "greedy", "arbitrated"),
    "ideal_sram": (True, False),
}

#: Axes applied by replacing a structural CapstanConfig field.
_CONFIG_FIELDS = ("lanes", "compute_units")

#: Axes applied by replacing a structural SpMUConfig field.
_SPMU_FIELDS = ("banks", "queue_depth", "crossbar_inputs")

#: Every supported axis name, for error messages.
KNOWN_AXES = _PLATFORM_FIELDS + ("memory", "shuffle") + _CONFIG_FIELDS + _SPMU_FIELDS


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes"):
        return True
    if lowered in ("0", "false", "no"):
        return False
    raise ValueError(f"not a boolean: {text!r}")


def _parse_choice(*allowed: str) -> Callable[[str], str]:
    def parse(text: str) -> str:
        if text not in allowed:
            raise ValueError(f"expected one of {', '.join(allowed)}, got {text!r}")
        return text

    return parse


#: Value parser per sweep axis name, shared by the CLI (``--axis NAME=...``)
#: and the job layer (axis values round-trip through JSON as strings/ints).
AXIS_VALUE_PARSERS: Dict[str, Callable[[Any], Any]] = {
    "ordering": OrderingMode,
    "memory": MemoryTechnology,
    "shuffle": ShuffleMode,
    "ideal_sram": _parse_bool,
    "lanes": int,
    "banks": int,
    "compute_units": int,
    "queue_depth": int,
    "crossbar_inputs": int,
    "bank_mapping": _parse_choice("hash", "linear"),
    "allocator": _parse_choice("separable", "greedy", "arbitrated"),
}


def parse_axis_value(axis: str, value: Any) -> Any:
    """Parse one JSON/CLI axis value into its native sweep type.

    Native values (enums, bools, ints already of the right type) pass
    through unchanged, so parsed axes are idempotent.
    """
    parser = AXIS_VALUE_PARSERS.get(axis)
    if parser is None:
        raise ConfigurationError(
            f"unknown sweep axis {axis!r}; known: {', '.join(sorted(AXIS_VALUE_PARSERS))}"
        )
    if isinstance(value, (Enum, bool)):
        return value
    if isinstance(value, int) and axis not in ("ordering", "memory", "shuffle"):
        return value
    try:
        return parser(value)
    except ValueError as exc:
        raise ConfigurationError(f"bad value for axis {axis!r}: {exc}") from None


def axis_value_to_json(value: Any) -> Any:
    """The JSON form of one axis value (enums collapse to their value)."""
    return getattr(value, "value", value)


def _apply_axis(platform: CapstanPlatform, axis: str, value: Any) -> CapstanPlatform:
    if axis in _PLATFORM_FIELDS:
        if axis == "ordering":
            if not isinstance(value, OrderingMode):
                raise ConfigurationError(f"ordering axis takes OrderingMode, got {value!r}")
        else:
            allowed = _PLATFORM_FIELD_VALUES[axis]
            if value not in allowed:
                raise ConfigurationError(
                    f"{axis} axis takes one of {allowed}, got {value!r}"
                )
        return replace(platform, **{axis: value})
    if axis == "memory":
        if not isinstance(value, MemoryTechnology):
            raise ConfigurationError(f"memory axis takes MemoryTechnology, got {value!r}")
        return replace(platform, config=platform.config.with_memory(value))
    if axis == "shuffle":
        if not isinstance(value, ShuffleMode):
            raise ConfigurationError(f"shuffle axis takes ShuffleMode, got {value!r}")
        return replace(platform, config=platform.config.with_shuffle_mode(value))
    if axis in _CONFIG_FIELDS or axis in _SPMU_FIELDS:
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            raise ConfigurationError(f"{axis} axis takes positive integers, got {value!r}")
        if axis in _CONFIG_FIELDS:
            return replace(platform, config=replace(platform.config, **{axis: value}))
        spmu = replace(platform.config.spmu, **{axis: value})
        return replace(platform, config=replace(platform.config, spmu=spmu))
    raise ConfigurationError(f"unknown sweep axis {axis!r}; known: {', '.join(KNOWN_AXES)}")


def _default_name(combo: Dict[str, Any]) -> str:
    parts = []
    for value in combo.values():
        if isinstance(value, Enum):
            parts.append(str(value.value))
        else:
            parts.append(str(value))
    return "-".join(parts)


def sweep(
    base: Optional[CapstanPlatform] = None,
    *,
    name: Optional[Callable[[Dict[str, Any]], str]] = None,
    **axes: Iterable[Any],
) -> Dict[str, CapstanPlatform]:
    """Generate named platform variants over the cartesian product of axes.

    Args:
        base: Platform the variants are derived from (default design point).
        name: ``name(combo) -> str`` labelling each variant; defaults to
            joining the axis values with ``-``.
        **axes: One iterable of values per swept axis (see module docstring).

    Returns:
        ``{variant name: platform}`` in deterministic cartesian order, with
        each platform's ``name`` field set to its variant name.
    """
    if not axes:
        raise ConfigurationError("sweep() needs at least one axis")
    base = base if base is not None else CapstanPlatform()
    label = name or _default_name
    keys = list(axes)
    variants: Dict[str, CapstanPlatform] = {}
    for values in itertools.product(*(list(axes[k]) for k in keys)):
        combo = dict(zip(keys, values))
        platform = base
        for axis, value in combo.items():
            platform = _apply_axis(platform, axis, value)
        variant_name = label(combo)
        if variant_name in variants:
            raise ConfigurationError(f"duplicate sweep variant name {variant_name!r}")
        variants[variant_name] = replace(platform, name=variant_name)
    return variants
