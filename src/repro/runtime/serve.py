"""``repro-serve``: a cache-front HTTP API over the experiment stores.

The ROADMAP's north star is serving the paper's evaluation grid to
multi-user traffic. This module is the serving seam: a small stdlib-only
(asyncio) HTTP/1.1 server that answers **warm** queries straight from the
content-addressed stores -- the profile cache, the SpMU throughput store,
and the SQLite run/job store -- without executing any workload, and turns
**cold** queries into persisted jobs (:mod:`repro.runtime.jobs`) that any
executor can drain, including a ``--drain`` worker inside the server
process.

Endpoints (all JSON):

* ``GET /health`` -- liveness and store locations.
* ``GET /healthz`` -- readiness: uptime, request counters, and whether
  the run/job store is usable (``degraded`` when it is not; store-backed
  routes answer ``503`` in that state while warm cache reads keep
  working).
* ``GET /profile?app=bfs&dataset=wikipedia&scale=1/64`` -- ``200`` with
  the cached profile on a warm key; ``202`` with an enqueued job id on a
  cold one (``enqueue=0`` turns that into a plain ``404`` miss).
* ``GET /throughput?ordering=unordered&lanes=16&banks=16`` -- same
  contract over the SpMU throughput store.
* ``GET /runs?limit=10`` -- recorded bench-run history.
* ``GET /frontier`` -- the Pareto frontier of the latest persisted
  adaptive DSE search (``404`` until a search has completed;
  ``key=<search-key>`` pins a specific one).
* ``GET /jobs`` / ``GET /jobs/<id>`` -- job states and unit counts.
* ``POST /jobs`` -- submit a job spec, e.g. ``{"type": "profile_grid",
  "apps": ["bfs"], "context": {"scale": 0.015625}}``.

The protocol subset is deliberately tiny (request line + headers + JSON
bodies, one request per connection) so the whole layer stays dependency-
free and trivially testable. It is hardened against the failure modes a
shared endpoint actually sees: slow/stuck clients are cut off by a
per-request timeout (``408``), oversized bodies are refused (``413``),
an unusable run store degrades store-backed routes to ``503`` instead of
crashing the process, and shutdown drains in-flight requests before
closing.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sqlite3
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple
from urllib.parse import parse_qs, urlsplit

from ..config import SpMUConfig
from ..core.ordering import OrderingMode
from ..errors import CapstanError
from . import registry
from .cache import (
    ProfileCache,
    ThroughputStore,
    _json_default,
    profile_to_dict,
)
from .jobs import (
    JOB_PENDING,
    JobSpec,
    JobStore,
    WorkUnit,
    context_from_dict,
    context_to_dict,
)
from .registry import RunContext
from .runstore import RunStore, RunStoreError, default_run_db

_STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Default per-request wall-clock budget (read + dispatch + write).
DEFAULT_REQUEST_TIMEOUT_S = 30.0

#: Default request-body cap; every legitimate body here is a small JSON
#: job spec, so 1 MiB is already generous.
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: How long shutdown waits for in-flight requests before cancelling them.
DEFAULT_DRAIN_TIMEOUT_S = 5.0


class _BadRequest(CapstanError):
    """Client error -> HTTP 400."""


class _StoreUnavailable(CapstanError):
    """The run/job store cannot serve this route -> HTTP 503."""


def _parse_scale_text(text: str) -> float:
    if "/" in text:
        numerator, _, denominator = text.partition("/")
        return float(numerator) / float(denominator)
    return float(text)


def _context_from_query(query: Dict[str, str]) -> RunContext:
    """Build the run context named by query parameters (defaults apply)."""
    kwargs: Dict[str, Any] = {}
    try:
        if "scale" in query:
            kwargs["scale"] = _parse_scale_text(query["scale"])
        if "pagerank_iterations" in query:
            kwargs["pagerank_iterations"] = int(query["pagerank_iterations"])
        if "conv_scale" in query:
            kwargs["conv_scale"] = _parse_scale_text(query["conv_scale"])
        if "backend" in query:
            kwargs["backend"] = query["backend"]
    except (ValueError, ZeroDivisionError) as exc:
        raise _BadRequest(f"bad context parameter: {exc}") from None
    return RunContext(**kwargs)


def _wants_enqueue(query: Dict[str, str]) -> bool:
    return query.get("enqueue", "1").strip().lower() not in ("0", "false", "no")


class CacheServer:
    """The request handler: store lookups in, JSON responses out.

    Synchronous on purpose -- every lookup is a file read or an indexed
    SQLite query, and running them inline on the event loop keeps the
    single store connection on one thread. Construct it on the thread
    that runs the loop.
    """

    def __init__(
        self,
        *,
        db: Optional[Path] = None,
        cache_root: Optional[Path] = None,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ):
        self.profile_cache = (
            ProfileCache(root=Path(cache_root)) if cache_root else ProfileCache()
        )
        self.throughput_store = ThroughputStore()
        self.request_timeout_s = float(request_timeout_s)
        self.max_body_bytes = int(max_body_bytes)
        self.started_at = time.monotonic()
        self.requests_total = 0
        self.inflight = 0
        #: Live ``serve_client`` tasks; shutdown drains these.
        self.client_tasks: Set["asyncio.Task[None]"] = set()
        # An unusable store (corrupt file, newer schema) degrades the
        # store-backed routes to 503 instead of killing the server: warm
        # cache reads are most of the traffic and need none of it.
        self.run_store: Optional[RunStore] = None
        self.jobs: Optional[JobStore] = None
        self.store_error: Optional[str] = None
        try:
            self.run_store = RunStore(db)
            self.jobs = JobStore(store=self.run_store)
        except (RunStoreError, sqlite3.Error, OSError) as exc:
            self.store_error = f"{type(exc).__name__}: {exc}"

    def close(self) -> None:
        if self.run_store is not None:
            self.run_store.close()

    def _job_store(self) -> JobStore:
        if self.jobs is None:
            raise _StoreUnavailable(f"run/job store unavailable: {self.store_error}")
        return self.jobs

    def _run_store(self) -> RunStore:
        if self.run_store is None:
            raise _StoreUnavailable(f"run/job store unavailable: {self.store_error}")
        return self.run_store

    # ------------------------------------------------------------ routes

    def handle(
        self, method: str, path: str, query: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        """Dispatch one request; returns ``(status, payload)``."""
        self.requests_total += 1
        try:
            if path == "/health" and method == "GET":
                return 200, {
                    "status": "ok",
                    "profile_cache": str(self.profile_cache.root),
                    "db": str(self.run_store.path) if self.run_store else None,
                }
            if path == "/healthz" and method == "GET":
                return self._healthz()
            if path == "/profile" and method == "GET":
                return self._profile(query)
            if path == "/throughput" and method == "GET":
                return self._throughput(query)
            if path == "/runs" and method == "GET":
                return self._runs(query)
            if path == "/frontier" and method == "GET":
                return self._frontier(query)
            if path == "/jobs" and method == "GET":
                return self._jobs()
            if path == "/jobs" and method == "POST":
                return self._submit(body)
            if path.startswith("/jobs/") and method == "GET":
                return self._job(path[len("/jobs/") :])
            if path in (
                "/health",
                "/healthz",
                "/profile",
                "/throughput",
                "/runs",
                "/frontier",
                "/jobs",
            ):
                return 405, {"error": f"method {method} not allowed on {path}"}
            return 404, {"error": f"no route {path}"}
        except _StoreUnavailable as exc:
            return 503, {"error": str(exc), "status": "degraded"}
        except sqlite3.Error as exc:
            # The store broke *after* open (disk full, file clobbered);
            # answer degraded instead of 500-ing on route internals.
            return 503, {
                "error": f"run/job store error: {type(exc).__name__}: {exc}",
                "status": "degraded",
            }
        except _BadRequest as exc:
            return 400, {"error": str(exc)}
        except (CapstanError, registry.RegistryError) as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - server must answer
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    def _healthz(self) -> Tuple[int, Dict[str, Any]]:
        """Readiness: degraded (but alive) when the store is unusable."""
        degraded = self.jobs is None
        payload: Dict[str, Any] = {
            "status": "degraded" if degraded else "ok",
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "requests_total": self.requests_total,
            "inflight": self.inflight,
            "profile_cache": str(self.profile_cache.root),
        }
        if degraded:
            payload["store_error"] = self.store_error
        else:
            # One cheap store probe so /healthz notices a store that
            # broke after open, not just one that failed to open.
            assert self.run_store is not None
            try:
                self.run_store.connection.execute("SELECT 1").fetchone()
                payload["db"] = str(self.run_store.path)
            except sqlite3.Error as exc:
                payload["status"] = "degraded"
                payload["store_error"] = f"{type(exc).__name__}: {exc}"
        return 200, payload

    def _profile(self, query: Dict[str, str]) -> Tuple[int, Dict[str, Any]]:
        app = query.get("app")
        dataset = query.get("dataset")
        if not app or not dataset:
            raise _BadRequest("profile queries need app= and dataset=")
        spec = registry.get_spec(app)
        if dataset not in spec.datasets:
            raise _BadRequest(
                f"unknown dataset {dataset!r} for {app}; known: {', '.join(spec.datasets)}"
            )
        context = _context_from_query(query)
        key = self.profile_cache.key(app, dataset, context, context_fields=spec.context_fields)
        profile = self.profile_cache.load(key)
        if profile is not None:
            return 200, {
                "status": "cached",
                "key": key,
                "profile": profile_to_dict(profile),
            }
        if not _wants_enqueue(query):
            return 404, {"status": "miss", "key": key}
        unit = WorkUnit(
            key=key,
            kind="profile",
            payload={
                "kind": "profile",
                "app": app,
                "dataset": dataset,
                "context": context_to_dict(context),
                "cache_root": str(self.profile_cache.root),
            },
        )
        job = self._job_store().submit(
            JobSpec(name=f"serve:profile:{app}/{dataset}", units=(unit,))
        )
        return 202, {"status": "enqueued", "key": key, "job": job.id, "job_state": job.state}

    def _throughput(self, query: Dict[str, str]) -> Tuple[int, Dict[str, Any]]:
        try:
            ordering = OrderingMode(query.get("ordering", "unordered"))
            lanes = int(query.get("lanes", 16))
            overrides = {
                field: int(query[field])
                for field in ("banks", "queue_depth", "crossbar_inputs")
                if field in query
            }
        except ValueError as exc:
            raise _BadRequest(f"bad throughput parameter: {exc}") from None
        bank_mapping = query.get("bank_mapping", "hash")
        allocator = query.get("allocator", "separable")
        config = SpMUConfig(**overrides)
        key = self.throughput_store.key(
            ordering=ordering,
            bank_mapping=bank_mapping,
            allocator_kind=allocator,
            config=config,
            lanes=lanes,
        )
        throughput = self.throughput_store.load(key)
        if throughput is not None:
            return 200, {"status": "cached", "key": key, "throughput": throughput}
        if not _wants_enqueue(query):
            return 404, {"status": "miss", "key": key}
        payload = {
            "kind": "throughput",
            "ordering": ordering.value,
            "bank_mapping": bank_mapping,
            "allocator": allocator,
            "lanes": lanes,
            "config": overrides,
        }
        unit = WorkUnit(key=key, kind="throughput", payload=payload)
        job = self._job_store().submit(
            JobSpec(name=f"serve:throughput:{key[:12]}", units=(unit,))
        )
        return 202, {"status": "enqueued", "key": key, "job": job.id, "job_state": job.state}

    def _runs(self, query: Dict[str, str]) -> Tuple[int, Dict[str, Any]]:
        try:
            limit = int(query.get("limit", 10))
        except ValueError as exc:
            raise _BadRequest(f"bad limit: {exc}") from None
        runs = self._run_store().runs(limit=limit)
        return 200, {
            "runs": [
                {
                    "id": run.id,
                    "created_at": run.created_at,
                    "benchmark": run.benchmark,
                    "scale": run.scale,
                    "workers": run.workers,
                    "label": run.label,
                    "executor": run.record.get("executor"),
                }
                for run in runs
            ]
        }

    def _frontier(self, query: Dict[str, str]) -> Tuple[int, Dict[str, Any]]:
        """Answer from the search store: the latest persisted DSE result."""
        from .search import SearchStore

        store = SearchStore()
        key = query.get("key")
        result = store.load_result(key) if key else store.load_latest_result()
        if result is None:
            return 404, {
                "status": "miss",
                "error": (
                    f"no persisted search result for key {key!r}"
                    if key
                    else "no search has completed yet; run repro-eval dse --search"
                ),
                "store": str(store.root),
            }
        frontier = [
            point
            for point in result.get("points", [])
            if point.get("name") in set(result.get("frontier", ()))
        ]
        return 200, {
            "status": "ok",
            "search_key": result.get("search_key"),
            "strategy": result.get("strategy"),
            "seed": result.get("seed"),
            "objectives": result.get("objectives"),
            "space_size": result.get("space_size"),
            "explored": len(result.get("points", [])),
            "evaluations": result.get("evaluations"),
            "generations": result.get("generations"),
            "frontier": frontier,
        }

    def _jobs(self) -> Tuple[int, Dict[str, Any]]:
        store = self._job_store()
        jobs = []
        for job in store.jobs(limit=50):
            entry = job.to_dict()
            entry["units"] = store.unit_states(job.id)
            jobs.append(entry)
        return 200, {"jobs": jobs}

    def _job(self, raw_id: str) -> Tuple[int, Dict[str, Any]]:
        try:
            job_id = int(raw_id)
        except ValueError:
            raise _BadRequest(f"bad job id {raw_id!r}") from None
        store = self._job_store()
        job = store.job(job_id)
        if job is None:
            return 404, {"error": f"no job {job_id}"}
        payload = job.to_dict()
        payload["units"] = store.unit_states(job_id)
        payload["failed_units"] = [
            {"seq": unit.seq, "kind": unit.kind, "error": unit.error}
            for unit in store.units(job_id, state="failed")
        ]
        payload["dead_units"] = [
            {
                "seq": unit.seq,
                "kind": unit.kind,
                "attempts": unit.attempts,
                "error": unit.error,
            }
            for unit in store.units(job_id, state="dead")
        ]
        return 200, payload

    def _submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            request = json.loads(body.decode() or "{}")
        except ValueError as exc:
            raise _BadRequest(f"bad JSON body: {exc}") from None
        kind = request.get("type")
        apps = request.get("apps")
        context = context_from_dict(request.get("context"))
        if kind == "profile_grid":
            spec = JobSpec.profile_grid(
                apps, context, cache_root=self.profile_cache.root
            )
        elif kind == "dse_grid":
            axes = request.get("axes")
            if not axes:
                raise _BadRequest("dse_grid jobs need a non-empty 'axes' mapping")
            spec = JobSpec.dse_grid(axes, apps=apps, context=context)
        elif kind == "table_suite":
            spec = JobSpec.table_suite(request.get("tables"), scale=request.get("scale"))
        else:
            raise _BadRequest(
                f"unknown job type {kind!r}; known: profile_grid, dse_grid, table_suite"
            )
        store = self._job_store()
        existing = store.job_by_key(spec.key)
        job = store.submit(spec)
        status = 200 if existing is not None else 201
        payload = job.to_dict()
        payload["units"] = store.unit_states(job.id)
        payload["resumed"] = existing is not None
        return status, payload

    # -------------------------------------------------------- HTTP layer

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, int]]:
        """Read the request line + headers; returns (method, target, length)."""
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0], parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        return method, target, content_length

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
    ) -> None:
        data = json.dumps(payload, default=_json_default).encode()
        phrase = _STATUS_PHRASES.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {phrase}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    async def serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One request per connection; minimal HTTP/1.1, JSON responses.

        The whole exchange runs under ``request_timeout_s`` so a stuck or
        malicious client cannot pin a connection open forever, and bodies
        beyond ``max_body_bytes`` are refused without being read.
        """
        task = asyncio.current_task()
        if task is not None:
            self.client_tasks.add(task)
        self.inflight += 1
        try:
            try:
                head = await asyncio.wait_for(
                    self._read_request(reader), self.request_timeout_s
                )
            except asyncio.TimeoutError:
                await self._respond(writer, 408, {"error": "request read timed out"})
                return
            if head is None:
                return
            method, target, content_length = head
            if content_length > self.max_body_bytes:
                await self._respond(
                    writer,
                    413,
                    {
                        "error": (
                            f"body of {content_length} bytes exceeds the"
                            f" {self.max_body_bytes}-byte limit"
                        )
                    },
                )
                return
            if content_length:
                try:
                    body = await asyncio.wait_for(
                        reader.readexactly(content_length), self.request_timeout_s
                    )
                except asyncio.TimeoutError:
                    await self._respond(writer, 408, {"error": "body read timed out"})
                    return
            else:
                body = b""
            split = urlsplit(target)
            query = {
                name: values[-1] for name, values in parse_qs(split.query).items()
            }
            status, payload = self.handle(method.upper(), split.path, query, body)
            await self._respond(writer, status, payload)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            self.inflight -= 1
            if task is not None:
                self.client_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def drain_clients(self, timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S) -> None:
        """Graceful shutdown: wait for in-flight requests, then cancel.

        Call after the listening server is closed -- no new connections
        arrive, existing ones get up to ``timeout_s`` to finish.
        """
        current = asyncio.current_task()
        pending = {task for task in self.client_tasks if task is not current}
        if not pending:
            return
        _, unfinished = await asyncio.wait(pending, timeout=timeout_s)
        for task in unfinished:
            task.cancel()


def drain_pending_jobs(
    db: Optional[Path],
    *,
    stop: threading.Event,
    poll_s: float = 0.25,
    workers: int = 1,
) -> None:
    """Run pending jobs with a local executor until ``stop`` is set.

    Runs on its own thread with its own store connection; this is the
    in-process stand-in for an external worker fleet draining the same
    queue through ``repro-eval sweep --resume``.
    """
    from .executors import LocalExecutor

    executor = LocalExecutor(workers)
    with JobStore(db) as store:
        while not stop.is_set():
            pending = [job for job in store.jobs() if job.state == JOB_PENDING]
            if not pending:
                stop.wait(poll_s)
                continue
            # jobs() is newest-first; drain oldest first.
            store.run_job(pending[-1].id, executor)


class BackgroundServer:
    """Run a :class:`CacheServer` on a daemon thread (tests, embedding).

    Usage::

        with BackgroundServer(db=db_path, cache_root=cache_dir) as server:
            urlopen(server.url + "/health")
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        db: Optional[Path] = None,
        cache_root: Optional[Path] = None,
        drain: bool = False,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ):
        self.host = host
        self.port = port
        self._db = db
        self._cache_root = cache_root
        self._drain = drain
        self._request_timeout_s = request_timeout_s
        self._max_body_bytes = max_body_bytes
        self._started = threading.Event()
        self._stop = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True, name="repro-serve")
        self._drain_thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BackgroundServer":
        self._thread.start()
        if self._drain:
            self._drain_thread = threading.Thread(
                target=drain_pending_jobs,
                args=(self._db,),
                kwargs={"stop": self._stop},
                daemon=True,
                name="repro-serve-drain",
            )
            self._drain_thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("serve thread failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"serve thread failed: {self._error}")
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._loop is not None and self._stop_async is not None:
            self._loop.call_soon_threadsafe(self._stop_async.set)
        self._thread.join(timeout=10)
        if self._drain_thread is not None:
            self._drain_thread.join(timeout=10)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._error = exc
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        handler = CacheServer(
            db=self._db,
            cache_root=self._cache_root,
            request_timeout_s=self._request_timeout_s,
            max_body_bytes=self._max_body_bytes,
        )
        server = await asyncio.start_server(handler.serve_client, self.host, self.port)
        try:
            self.port = server.sockets[0].getsockname()[1]
            self._started.set()
            await self._stop_async.wait()
        finally:
            server.close()
            await server.wait_closed()
            await handler.drain_clients()
            handler.close()


async def _serve_forever(args: argparse.Namespace) -> None:
    handler = CacheServer(
        db=Path(args.db) if args.db else None,
        cache_root=Path(args.cache_dir) if args.cache_dir else None,
    )
    server = await asyncio.start_server(handler.serve_client, args.host, args.port)
    address = server.sockets[0].getsockname()
    print(f"repro-serve listening on http://{address[0]}:{address[1]}")
    print(f"  profile cache: {handler.profile_cache.root}")
    if handler.run_store is not None:
        print(f"  run/job store: {handler.run_store.path}")
    else:
        print(f"  run/job store: DEGRADED ({handler.store_error})")
    try:
        async with server:
            await server.serve_forever()
    finally:
        server.close()
        await server.wait_closed()
        await handler.drain_clients()
        handler.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve warm profile/throughput/run-history queries from the "
            "content-addressed stores; enqueue jobs for cold ones."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: loopback)")
    parser.add_argument(
        "--port", type=int, default=8642, help="port (default: 8642; 0 = ephemeral)"
    )
    parser.add_argument(
        "--db", default=None, help=f"run/job store (default: $REPRO_RUN_DB or {default_run_db()})"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="profile cache directory (default: the shared cache)"
    )
    parser.add_argument(
        "--drain",
        action="store_true",
        help="also drain enqueued jobs in-process with a local executor",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(sys.argv[1:] if argv is None else argv)
    stop = threading.Event()
    if args.drain:
        drain_thread = threading.Thread(
            target=drain_pending_jobs,
            args=(Path(args.db) if args.db else None,),
            kwargs={"stop": stop},
            daemon=True,
            name="repro-serve-drain",
        )
        drain_thread.start()
    try:
        asyncio.run(_serve_forever(args))
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
