"""Design-space exploration: batched costing over configuration grids.

The paper evaluates one fixed Capstan design point and studies sensitivity
along one axis at a time (Tables 9-12). This module opens the configuration
space as a first-class object: :func:`explore` generates a platform grid
from :func:`~repro.runtime.sweep.sweep` axes -- including the structural
axes ``lanes`` / ``banks`` / ``compute_units`` / ``queue_depth`` --
collects workload profiles through the cached
:class:`~repro.runtime.runner.ExperimentRunner`, costs the whole
(profile x variant) matrix in one
:func:`~repro.apps.timing.estimate_cycles_batch` call, attaches the area
model from :mod:`repro.core.area`, and extracts the cycles-vs-area Pareto
frontier. ``repro-eval dse`` drives it from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._budget import resolve_memory_budget
from ..apps.profile import WorkloadProfile
from ..apps.timing import (
    COSTING_BYTES_PER_CELL,
    BatchCostResult,
    CapstanPlatform,
    estimate_cycles_batch,
    iter_cycles_batches,
    platform_throughput_variant,
)
from ..core.area import capstan_area
from ..core.spmu import effective_bank_throughput_batch
from ..errors import ConfigurationError
from ..sim.stats import geometric_mean
from .cache import ProfileCache
from .executors import Executor
from .registry import RunContext
from .runner import ExperimentRunner
from .sweep import sweep


def prefill_throughputs(platforms: Iterable[CapstanPlatform]) -> int:
    """Warm the SpMU throughput caches for a family of platforms.

    Deduplicates the platforms' calibration microbenchmarks, simulates
    every cold one in a single batched lock-step pass, and persists the
    results with one :class:`~repro.runtime.cache.ThroughputStore`
    transaction. Running this before launching parallel sweeps (``repro-eval
    dse --prefill``) means the workers find every microbenchmark warm
    instead of racing to re-simulate the same cold variants.

    Returns:
        The number of distinct SpMU variants resolved (warm or cold).
    """
    variants = {
        platform_throughput_variant(p) for p in platforms if not p.ideal_sram
    }
    if not variants:
        return 0
    effective_bank_throughput_batch(sorted(variants, key=repr))
    return len(variants)


def pareto_frontier(costs: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated rows of a (points x objectives) matrix.

    All objectives are minimized. A point is dominated when some other
    point is no worse in every objective and strictly better in at least
    one; ties (duplicated points) are all kept. Indices come back in input
    order.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.ndim != 2:
        raise ConfigurationError("costs must be a 2-D (points x objectives) array")
    points = costs.shape[0]
    keep = np.ones(points, dtype=bool)
    for i in range(points):
        dominators = np.all(costs <= costs[i], axis=1) & np.any(costs < costs[i], axis=1)
        if np.any(dominators):
            keep[i] = False
    return np.nonzero(keep)[0]


@dataclass
class DSEResult:
    """Cost/area grid of one design-space exploration.

    Attributes:
        variants: The swept platforms by variant name, in sweep order.
        tasks: The ``(app, dataset)`` coordinates of each profile row.
        batch: The full per-cell costing (cycles and stall categories), or
            ``None`` when the exploration streamed the grid out under a
            memory budget instead of materializing it.
        area_mm2: Modelled chip area per variant.
        gmean_cycles: Geometric-mean cycles over all profiles per variant.
        gmean_energy_mj: Geometric-mean energy (mJ) over all profiles per
            variant when the exploration costed energy, else ``None``.
    """

    variants: Dict[str, CapstanPlatform]
    tasks: List[Tuple[str, str]]
    batch: Optional[BatchCostResult]
    area_mm2: np.ndarray
    gmean_cycles: np.ndarray
    gmean_energy_mj: Optional[np.ndarray] = None
    _frontiers: Dict[Tuple[str, ...], Tuple[str, ...]] = field(
        default_factory=dict, repr=False
    )

    @property
    def names(self) -> List[str]:
        """Variant names in sweep order."""
        return list(self.variants)

    @property
    def cycles(self) -> np.ndarray:
        """Per-cell cycles, shape ``(len(tasks), len(variants))``."""
        if self.batch is None:
            raise ConfigurationError(
                "per-cell cycles were streamed out under the memory budget; "
                "pass keep_grid=True (or drop the budget) to materialize them"
            )
        return self.batch.cycles

    def _objective_values(self, objective: str) -> np.ndarray:
        if objective == "cycles":
            return self.gmean_cycles
        if objective == "area":
            return self.area_mm2
        if objective == "energy":
            if self.gmean_energy_mj is None:
                raise ConfigurationError(
                    "energy was not costed; pass energy=True to explore() "
                    "(repro-eval dse --objective ...,energy)"
                )
            return self.gmean_energy_mj
        raise ConfigurationError(
            f"unknown objective {objective!r}; known: cycles, area, energy"
        )

    def frontier(self, objectives: Optional[Sequence[str]] = None) -> Tuple[str, ...]:
        """Variant names on the Pareto frontier of the given objectives.

        Defaults to the classic (gmean cycles, area) frontier; pass
        ``("cycles", "area", "energy")`` for the energy-aware frontier
        (requires the exploration to have costed energy).
        """
        key = tuple(objectives) if objectives is not None else ("cycles", "area")
        cached = self._frontiers.get(key)
        if cached is None:
            costs = np.column_stack([self._objective_values(o) for o in key])
            names = self.names
            cached = tuple(names[i] for i in pareto_frontier(costs))
            self._frontiers[key] = cached
        return cached

    def rows(self) -> List[Dict[str, Any]]:
        """One report row per variant: name, gmean cycles, area, frontier flag.

        Built from the per-variant aggregate arrays only, so it works even
        when the per-cell grid was streamed out under a memory budget.
        """
        on_frontier = set(self.frontier())
        rows = []
        for j, name in enumerate(self.names):
            row: Dict[str, Any] = {
                "name": name,
                "gmean_cycles": float(self.gmean_cycles[j]),
                "area_mm2": float(self.area_mm2[j]),
            }
            if self.gmean_energy_mj is not None:
                row["gmean_energy_mj"] = float(self.gmean_energy_mj[j])
            row["pareto"] = name in on_frontier
            rows.append(row)
        return rows

    def top_rows(self, n: int, key: str = "gmean_cycles") -> List[Dict[str, Any]]:
        """The ``n`` best report rows, sorted ascending by ``key``.

        Streaming-safe: only the per-variant aggregates are consulted, so
        ``--top`` works under ``--memory-budget`` without materializing
        the per-cell grid.
        """
        rows = self.rows()
        if key not in ("gmean_cycles", "area_mm2", "gmean_energy_mj"):
            raise ConfigurationError(
                f"unknown top_rows key {key!r}; known: gmean_cycles, area_mm2, "
                "gmean_energy_mj"
            )
        if key == "gmean_energy_mj" and self.gmean_energy_mj is None:
            raise ConfigurationError(
                "energy was not costed; pass energy=True to explore()"
            )
        rows.sort(key=lambda r: r[key])
        return rows[: max(0, n)]


def explore(
    *,
    base: Optional[CapstanPlatform] = None,
    name: Optional[Callable[[Dict[str, Any]], str]] = None,
    profiles: Optional[Sequence[WorkloadProfile]] = None,
    apps: Optional[Sequence[str]] = None,
    context: Optional[RunContext] = None,
    workers: Optional[int] = None,
    cache: Union[ProfileCache, bool, None] = True,
    executor: Union[str, Executor, None] = None,
    memory_budget: Optional[int] = None,
    keep_grid: Optional[bool] = None,
    energy: bool = False,
    seed: Optional[int] = None,
    **axes: Iterable[Any],
) -> DSEResult:
    """Cost the evaluation workloads over a configuration grid.

    Args:
        base: Platform the variants derive from (default design point).
        name: Optional variant-labelling callable (see :func:`sweep`).
        profiles: Pre-collected profiles to cost; when ``None``, the
            registered applications are collected through the cached
            :class:`ExperimentRunner`.
        apps: Application subset to collect (ignored when ``profiles`` is
            given).
        context: Run parameters for profile collection (scale etc.).
        workers / cache / executor: Forwarded to the
            :class:`ExperimentRunner` (``executor`` picks the execution
            backend for profile collection: a name, an
            :class:`~repro.runtime.executors.base.Executor` instance, or
            ``None`` for the automatic local/pool choice).
        memory_budget: Byte budget for the costing working set; the
            (profile x variant) cross-product streams through it chunk by
            chunk with the geometric-mean / Pareto state folded
            incrementally (identical floats -- each chunk carries complete
            profile columns). ``None`` defers to ``REPRO_MEMORY_BUDGET``.
        keep_grid: Materialize the full :class:`BatchCostResult` grid.
            Defaults to ``True`` without a budget, and under a budget to
            whether the full grid itself fits in it; when ``False`` the
            result's ``batch`` is ``None`` and only the aggregate arrays
            (gmean cycles, area, frontier) are kept.
        energy: Also cost per-variant energy through the
            :mod:`repro.core.energy` model (fills ``gmean_energy_mj`` and
            enables the energy-aware frontier).
        seed: Shuffle the variant evaluation order with one
            ``numpy.random.default_rng(seed)``. The same seed yields the
            same order (and therefore byte-identical reports); ``None``
            keeps cartesian sweep order.
        **axes: Sweep axes, e.g. ``lanes=(8, 16, 32), banks=(8, 16)``.

    Returns:
        A :class:`DSEResult` with the cost grid, areas, and Pareto frontier.
    """
    variants = sweep(base, name=name, **axes)
    for platform in variants.values():
        platform.config.validate()
    if seed is not None:
        rng = np.random.default_rng(seed)
        names = list(variants)
        order = rng.permutation(len(names))
        variants = {names[i]: variants[names[i]] for i in order}
    if profiles is None:
        runner = ExperimentRunner(
            context=context or RunContext(),
            workers=workers,
            cache=cache,
            executor=executor,
        )
        report = runner.run(apps=list(apps) if apps is not None else None)
        succeeded = [r for r in report.results if r.profile is not None]
        tasks = [(r.app, r.dataset) for r in succeeded]
        collected = [r.profile for r in succeeded]
    else:
        collected = list(profiles)
        tasks = [(p.app, p.dataset) for p in collected]
    budget = resolve_memory_budget(memory_budget)
    if keep_grid is None:
        keep_grid = (
            budget is None
            or len(collected) * len(variants) * COSTING_BYTES_PER_CELL <= budget
        )
    platform_list = list(variants.values())
    gmean_energy: Optional[List[float]] = [] if energy else None
    if keep_grid:
        batch: Optional[BatchCostResult] = estimate_cycles_batch(
            collected, platform_list, memory_budget=budget, energy=energy
        )
        gmean_cycles = np.array(
            [
                geometric_mean([float(c) for c in batch.cycles[:, j]])
                for j in range(len(variants))
            ]
        )
        if gmean_energy is not None:
            gmean_energy.extend(
                geometric_mean([float(e) for e in batch.energy_mj[:, j]])
                for j in range(len(variants))
            )
    else:
        # Stream the cross-product: each chunk carries complete profile
        # columns, so per-column gmeans fold in with identical floats and
        # the per-cell grid never has to exist at once.
        batch = None
        gmean_parts: List[float] = []
        for _, chunk_batch in iter_cycles_batches(
            collected, platform_list, memory_budget=budget, energy=energy
        ):
            gmean_parts.extend(
                geometric_mean([float(c) for c in chunk_batch.cycles[:, j]])
                for j in range(chunk_batch.cycles.shape[1])
            )
            if gmean_energy is not None:
                gmean_energy.extend(
                    geometric_mean([float(e) for e in chunk_batch.energy_mj[:, j]])
                    for j in range(chunk_batch.cycles.shape[1])
                )
        gmean_cycles = np.asarray(gmean_parts, dtype=np.float64)
    area_mm2 = np.array([capstan_area(v.config).total_mm2 for v in variants.values()])
    return DSEResult(
        variants=variants,
        tasks=tasks,
        batch=batch,
        area_mm2=area_mm2,
        gmean_cycles=gmean_cycles,
        gmean_energy_mj=(
            np.asarray(gmean_energy, dtype=np.float64) if gmean_energy is not None else None
        ),
    )
