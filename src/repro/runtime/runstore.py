"""SQLite-backed experiment store for benchmark run history.

``BENCH_runner.json`` is one snapshot; this store is the trajectory. Every
bench run -- the profile-collection timings plus the costing / spmu /
formats / chunked sections -- is recorded as structured rows in a single
SQLite database:

* ``runs`` holds one row per run: timestamp, the code fingerprint (the
  profile cache's :func:`~repro.runtime.cache.code_fingerprint`, so a run
  is attributable to the exact source tree that produced it), scale,
  workers, and the full record verbatim as JSON;
* ``sections`` breaks each record section out with its identity flag and
  traced ``peak_mb``;
* ``section_metrics`` flattens every numeric metric into one indexed row
  per (run, section, metric) so history and trend queries never decode
  JSON;
* ``baselines`` freezes named snapshots of recorded runs for the
  regression analytics in :mod:`repro.eval.regression` to compare against.

The schema ships as a versioned ``schema.sql`` next to this module and is
applied on first open; ``PRAGMA user_version`` guards against opening a
database written by a newer layout. Connections run in WAL mode so a
reader (``repro-eval bench-history``) never blocks a writer (the bench
runner appending a run). Set ``REPRO_RUN_DB`` to relocate the database
(default ``~/.cache/repro/runs.sqlite``).
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import sqlite3
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import CapstanError
from .cache import code_fingerprint

#: Bump when schema.sql changes incompatibly; mirrored into user_version.
#: Version 2 added the job layer (``jobs`` / ``work_units``) additively, so
#: version-1 databases upgrade in place on first open. Version 3 adds the
#: lease columns (``lease_owner`` / ``lease_expires_at``) to ``work_units``;
#: v2 databases gain them via ALTER TABLE on first open.
SCHEMA_VERSION = 3

#: How long a writer waits on a locked database before erroring. Claim
#: transactions from concurrent ``run_job`` processes serialize on the
#: write lock; five seconds comfortably covers a claim + wave commit.
BUSY_TIMEOUT_MS = 5000

#: Environment override for the database location.
ENV_RUN_DB = "REPRO_RUN_DB"

#: Section name the top-level scalar timings of a record are filed under.
RUNNER_SECTION = "runner"


class RunStoreError(CapstanError):
    """Raised when the run database is unusable (e.g. newer schema)."""


def default_run_db() -> Path:
    """The database path: ``$REPRO_RUN_DB`` or ``~/.cache/repro/runs.sqlite``."""
    override = os.environ.get(ENV_RUN_DB)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "runs.sqlite"


def _utc_now() -> str:
    return datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def flatten_metrics(section: Dict[str, Any]) -> Dict[str, float]:
    """Numeric metrics of one section dict, nested dicts dotted one level.

    Booleans are flags, not metrics, and are excluded; ``None`` values
    (e.g. ``spmu_numba_speedup`` without numba) are dropped -- absence in
    ``section_metrics`` is how a metric reads as unrecorded.
    """
    flat: Dict[str, float] = {}
    for key, value in section.items():
        if _is_number(value):
            flat[key] = float(value)
        elif isinstance(value, dict):
            for inner, nested in value.items():
                if _is_number(nested):
                    flat[f"{key}.{inner}"] = float(nested)
    return flat


def record_sections(record: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Split one bench record into named sections.

    Every top-level dict value is a section; the remaining top-level
    scalars (cold/warm timings, speedups, worker counts) form the
    implicit :data:`RUNNER_SECTION`.
    """
    sections: Dict[str, Dict[str, Any]] = {}
    runner: Dict[str, Any] = {}
    for key, value in record.items():
        if isinstance(value, dict):
            sections[key] = value
        else:
            runner[key] = value
    sections[RUNNER_SECTION] = runner
    return sections


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One recorded bench run."""

    id: int
    created_at: str
    benchmark: str
    fingerprint: str
    scale: Optional[float]
    workers: Optional[int]
    cpu_count: Optional[int]
    label: Optional[str]
    record: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class BaselineRecord:
    """A named, frozen snapshot of one recorded run."""

    name: str
    run_id: int
    created_at: str
    scale: Optional[float]
    fingerprint: str
    record: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class RunStore:
    """SQLite experiment store; see the module docstring for the layout.

    Attributes:
        path: Database file location.
    """

    def __init__(self, path: Optional[Path] = None):
        self.path = Path(path) if path is not None else default_run_db()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._connection = sqlite3.connect(str(self.path))
        self._connection.row_factory = sqlite3.Row
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA foreign_keys=ON")
        self._connection.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        self._apply_schema()

    def _apply_schema(self) -> None:
        version = self._connection.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            raise RunStoreError(
                f"run database {self.path} uses schema version {version}, newer "
                f"than this code's {SCHEMA_VERSION}; refusing to touch it"
            )
        schema = (Path(__file__).resolve().parent / "schema.sql").read_text()
        with self._connection:
            self._connection.executescript(schema)
            if 0 < version < 3:
                # v2 -> v3: the lease columns. executescript above only
                # creates missing tables; existing work_units rows need
                # the explicit ALTERs (idempotent via the version gate).
                for column, kind in (
                    ("lease_owner", "TEXT"),
                    ("lease_expires_at", "REAL"),
                ):
                    try:
                        self._connection.execute(
                            f"ALTER TABLE work_units ADD COLUMN {column} {kind}"
                        )
                    except sqlite3.OperationalError as exc:
                        if "duplicate column" not in str(exc).lower():
                            raise
            self._connection.execute(f"PRAGMA user_version={SCHEMA_VERSION}")

    @property
    def connection(self) -> sqlite3.Connection:
        """The live connection (shared with :class:`~repro.runtime.jobs.JobStore`)."""
        return self._connection

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- writes

    def record_run(
        self,
        record: Dict[str, Any],
        *,
        label: Optional[str] = None,
        fingerprint: Optional[str] = None,
        created_at: Optional[str] = None,
    ) -> int:
        """Append one bench record; returns the new run id.

        Args:
            record: A ``BENCH_runner.json``-shaped dict.
            label: Free-form tag (e.g. a branch or CI run id).
            fingerprint: Code-fingerprint override (testing); defaults to
                the live :func:`~repro.runtime.cache.code_fingerprint`.
            created_at: Timestamp override (testing); defaults to now.
        """
        code = fingerprint if fingerprint is not None else code_fingerprint()
        sections = record_sections(record)
        with self._connection:
            cursor = self._connection.execute(
                "INSERT INTO runs (created_at, benchmark, code_fingerprint, scale,"
                " workers, cpu_count, label, record_json) VALUES (?,?,?,?,?,?,?,?)",
                (
                    created_at if created_at is not None else _utc_now(),
                    str(record.get("benchmark", "")),
                    code,
                    record.get("scale"),
                    record.get("workers"),
                    record.get("cpu_count"),
                    label,
                    json.dumps(record, sort_keys=True),
                ),
            )
            run_id = int(cursor.lastrowid)
            for name, section in sections.items():
                identical = section.get("identical")
                self._connection.execute(
                    "INSERT INTO sections (run_id, name, identical, peak_mb,"
                    " metrics_json) VALUES (?,?,?,?,?)",
                    (
                        run_id,
                        name,
                        None if identical is None else int(bool(identical)),
                        section.get("peak_mb"),
                        json.dumps(section, sort_keys=True),
                    ),
                )
                self._connection.executemany(
                    "INSERT INTO section_metrics (run_id, section, metric, value)"
                    " VALUES (?,?,?,?)",
                    [
                        (run_id, name, metric, value)
                        for metric, value in flatten_metrics(section).items()
                    ],
                )
        return run_id

    def snapshot_baseline(
        self, name: str, run_id: Optional[int] = None
    ) -> BaselineRecord:
        """Freeze one recorded run (default: the latest) as a named baseline.

        Re-snapshotting an existing name replaces it -- a baseline is "the
        blessed run", not history (the runs table is the history).
        """
        run = self.latest_run() if run_id is None else self.load_run(run_id)
        if run is None:
            raise RunStoreError(
                f"cannot snapshot baseline {name!r}: "
                + ("the store has no runs" if run_id is None else f"no run {run_id}")
            )
        created = _utc_now()
        with self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO baselines (name, run_id, created_at, scale,"
                " code_fingerprint, snapshot_json) VALUES (?,?,?,?,?,?)",
                (
                    name,
                    run.id,
                    created,
                    run.scale,
                    run.fingerprint,
                    json.dumps(run.record, sort_keys=True),
                ),
            )
        return BaselineRecord(
            name=name,
            run_id=run.id,
            created_at=created,
            scale=run.scale,
            fingerprint=run.fingerprint,
            record=run.record,
        )

    # -------------------------------------------------------------- reads

    @staticmethod
    def _run_from_row(row: sqlite3.Row) -> RunRecord:
        return RunRecord(
            id=row["id"],
            created_at=row["created_at"],
            benchmark=row["benchmark"],
            fingerprint=row["code_fingerprint"],
            scale=row["scale"],
            workers=row["workers"],
            cpu_count=row["cpu_count"],
            label=row["label"],
            record=json.loads(row["record_json"]),
        )

    def load_run(self, run_id: int) -> Optional[RunRecord]:
        row = self._connection.execute(
            "SELECT * FROM runs WHERE id=?", (run_id,)
        ).fetchone()
        return None if row is None else self._run_from_row(row)

    def latest_run(self) -> Optional[RunRecord]:
        row = self._connection.execute(
            "SELECT * FROM runs ORDER BY id DESC LIMIT 1"
        ).fetchone()
        return None if row is None else self._run_from_row(row)

    def runs(
        self, limit: Optional[int] = None, fingerprint: Optional[str] = None
    ) -> List[RunRecord]:
        """Recorded runs, newest first, optionally keyed to one fingerprint."""
        query = "SELECT * FROM runs"
        parameters: List[Any] = []
        if fingerprint is not None:
            query += " WHERE code_fingerprint=?"
            parameters.append(fingerprint)
        query += " ORDER BY id DESC"
        if limit is not None:
            query += " LIMIT ?"
            parameters.append(limit)
        rows = self._connection.execute(query, parameters).fetchall()
        return [self._run_from_row(row) for row in rows]

    def sections(self, run_id: int) -> Dict[str, Dict[str, Any]]:
        """The stored sections of one run, name -> section dict."""
        rows = self._connection.execute(
            "SELECT name, metrics_json FROM sections WHERE run_id=?", (run_id,)
        ).fetchall()
        return {row["name"]: json.loads(row["metrics_json"]) for row in rows}

    def metric_history(
        self, section: str, metric: str, limit: int = 20
    ) -> List[Tuple[int, float]]:
        """The last ``limit`` recorded values of one metric, oldest first.

        Returns ``(run_id, value)`` pairs; runs that did not record the
        metric simply do not appear.
        """
        rows = self._connection.execute(
            "SELECT run_id, value FROM section_metrics"
            " WHERE section=? AND metric=? AND value IS NOT NULL"
            " ORDER BY run_id DESC LIMIT ?",
            (section, metric, limit),
        ).fetchall()
        return [(row["run_id"], row["value"]) for row in reversed(rows)]

    def baseline(self, name: str) -> Optional[BaselineRecord]:
        row = self._connection.execute(
            "SELECT * FROM baselines WHERE name=?", (name,)
        ).fetchone()
        if row is None:
            return None
        return BaselineRecord(
            name=row["name"],
            run_id=row["run_id"],
            created_at=row["created_at"],
            scale=row["scale"],
            fingerprint=row["code_fingerprint"],
            record=json.loads(row["snapshot_json"]),
        )

    def baselines(self) -> List[BaselineRecord]:
        rows = self._connection.execute(
            "SELECT name FROM baselines ORDER BY name"
        ).fetchall()
        found = [self.baseline(row["name"]) for row in rows]
        return [baseline for baseline in found if baseline is not None]

    def __len__(self) -> int:
        return int(self._connection.execute("SELECT COUNT(*) FROM runs").fetchone()[0])
