"""``repro-eval``: drive the experiment runner from the command line.

Runs the registered (application x dataset) grid through
:class:`~repro.runtime.runner.ExperimentRunner` -- parallel and cached --
and prints the per-task report. Typical uses::

    repro-eval --list                      # show the registered grid
    repro-eval --scale 1/256              # quick full-grid collection
    repro-eval --apps spmv-csr,bfs -j 4   # a subset, four workers
    repro-eval --no-cache --json out.json # cold run, machine-readable report
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..errors import CapstanError
from .cache import ProfileCache, default_cache_dir, profile_to_dict
from .registry import RunContext, app_datasets, app_order
from .runner import ExperimentRunner


def _parse_scale(text: str) -> float:
    """Parse a scale given as a float (``0.015625``) or ratio (``1/64``)."""
    if "/" in text:
        numerator, _, denominator = text.partition("/")
        try:
            return float(numerator) / float(denominator)
        except ZeroDivisionError:
            # Raise ValueError so argparse prints a clean usage error.
            raise ValueError(f"zero denominator in {text!r}") from None
    return float(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Run the Capstan evaluation grid (parallel, profile-cached).",
    )
    parser.add_argument(
        "--apps",
        help="comma-separated application names (default: all registered)",
    )
    parser.add_argument(
        "--scale",
        type=_parse_scale,
        default=1.0 / 64.0,
        help="dataset scale, e.g. 1/64 or 0.015625 (default: 1/64)",
    )
    parser.add_argument(
        "--pagerank-iterations", type=int, default=2, help="power iterations per PageRank run"
    )
    parser.add_argument(
        "--conv-scale", type=_parse_scale, default=0.125, help="ResNet channel scale"
    )
    parser.add_argument(
        "--backend",
        choices=("vectorized", "reference"),
        default="vectorized",
        help="profiling-kernel backend (reference = per-element loop kernels)",
    )
    parser.add_argument(
        "-j", "--workers", type=int, default=None,
        help="process-pool size (default: $REPRO_EVAL_WORKERS or serial)",
    )
    parser.add_argument("--no-cache", action="store_true", help="bypass the on-disk profile cache")
    parser.add_argument(
        "--cache-dir", default=None, help=f"profile cache directory (default: {default_cache_dir()})"
    )
    parser.add_argument(
        "--clear-cache", action="store_true", help="delete cached profiles, then exit"
    )
    parser.add_argument(
        "--prune-cache",
        action="store_true",
        help="delete cached profiles from other code versions, then exit",
    )
    parser.add_argument("--list", action="store_true", help="list the registered grid, then exit")
    parser.add_argument(
        "--keep-going", action="store_true", help="report task failures instead of aborting"
    )
    parser.add_argument("--json", default=None, help="also write the report (with profiles) here")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list:
        for app, datasets in app_datasets().items():
            print(f"{app}: {', '.join(datasets)}")
        return 0

    if args.clear_cache or args.prune_cache:
        target = ProfileCache(root=args.cache_dir) if args.cache_dir else ProfileCache()
        removed = target.clear() if args.clear_cache else target.prune()
        verb = "removed" if args.clear_cache else "pruned"
        print(f"{verb} {removed} cached profiles from {target.root}")
        return 0

    cache: object
    if args.no_cache:
        cache = False
    elif args.cache_dir is not None:
        cache = ProfileCache(root=args.cache_dir)
    else:
        cache = True

    apps = [name.strip() for name in args.apps.split(",") if name.strip()] if args.apps else None
    unknown = set(apps or ()) - set(app_order())
    if unknown:
        print(f"unknown applications: {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    context = RunContext(
        scale=args.scale,
        pagerank_iterations=args.pagerank_iterations,
        conv_scale=args.conv_scale,
        backend=args.backend,
    )
    runner = ExperimentRunner(
        context=context,
        workers=args.workers,
        cache=cache,
        raise_on_error=not args.keep_going,
    )
    try:
        report = runner.run(apps=apps)
    except CapstanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    from ..eval.report import format_run_report

    print(format_run_report(report, title=f"Evaluation grid (scale={args.scale:g})"))

    if args.json:
        payload = {
            "scale": args.scale,
            "workers": report.workers,
            "wall_time_s": report.wall_time_s,
            "tasks": [
                {
                    "app": r.app,
                    "dataset": r.dataset,
                    "status": r.status,
                    "duration_s": r.duration_s,
                    "error": r.error,
                    "profile": profile_to_dict(r.profile) if r.profile is not None else None,
                }
                for r in report.results
            ],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    return 1 if report.errors() else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
