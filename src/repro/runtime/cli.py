"""``repro-eval``: drive the experiment runner from the command line.

Runs the registered (application x dataset) grid through
:class:`~repro.runtime.runner.ExperimentRunner` -- parallel and cached --
and prints the per-task report. The ``dse`` subcommand instead costs the
grid over a family of platform variants through
:func:`~repro.runtime.dse.explore` and reports the cycles-vs-area Pareto
frontier. The bench subcommands read the SQLite experiment store
(:mod:`~repro.runtime.runstore`): ``bench-history`` renders recorded runs
and drift trends, ``bench-compare`` evaluates a run against a baseline
and the declarative expectations, and ``bench-baseline`` freezes a named
baseline snapshot. Typical uses::

    repro-eval --list                      # show the registered grid
    repro-eval --scale 1/256              # quick full-grid collection
    repro-eval --apps spmv-csr,bfs -j 4   # a subset, four workers
    repro-eval --no-cache --json out.json # cold run, machine-readable report
    repro-eval dse --axis lanes=8,16,32 --axis banks=8,16,32
    repro-eval dse --axis memory=hbm2e,ddr4 --apps bfs,sssp --pareto-only
    repro-eval sweep --executor subprocess -j 4   # sharded resumable grid job
    repro-eval sweep --resume 3                   # continue a killed sweep
    repro-eval worker                             # JSON-lines unit worker (stdin)
    repro-eval bench-history --limit 10 --trends
    repro-eval bench-compare --baseline main --expectations benchmarks/expectations.toml
    repro-eval bench-baseline main        # freeze the latest recorded run
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from .._budget import ENV_MEMORY_BUDGET, parse_memory_budget
from .._compiled import set_default_backend
from ..errors import CapstanError
from .cache import ProfileCache, default_cache_dir, profile_to_dict
from .dse import explore, prefill_throughputs
from .registry import RunContext, app_datasets, app_order
from .runner import ExperimentRunner
from .runstore import RunStore, default_run_db
from .sweep import AXIS_VALUE_PARSERS

#: Executor names accepted by --executor flags.
_EXECUTOR_CHOICES = ("local", "pool", "subprocess")


def _add_memory_budget_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memory-budget",
        default=None,
        metavar="SIZE",
        help=(
            "byte budget for batched working sets, e.g. 64M or 2G; the batch "
            "engines stream in chunks under it (default: $REPRO_MEMORY_BUDGET)"
        ),
    )


def _apply_memory_budget(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Publish ``--memory-budget`` through the environment seam.

    Exporting ``REPRO_MEMORY_BUDGET`` (rather than threading a parameter)
    makes the budget reach every engine, including ones running in worker
    processes spawned with a copy of the environment.
    """
    if args.memory_budget is None:
        return
    try:
        budget = parse_memory_budget(args.memory_budget)
    except CapstanError as exc:
        parser.error(str(exc))
    os.environ[ENV_MEMORY_BUDGET] = str(budget)


def _resolve_backend(backend: str) -> str:
    """Map the CLI backend onto the profiling-kernel backend seam.

    ``numba`` selects the compiled process default (SpMU scheduling and the
    packed-word kernels); the profiling kernels themselves stay on the
    vectorized path, which the compiled engines treat as their fallback.
    """
    if backend == "numba":
        set_default_backend("numba")
        return "vectorized"
    return backend


def _parse_scale(text: str) -> float:
    """Parse a scale given as a float (``0.015625``) or ratio (``1/64``)."""
    if "/" in text:
        numerator, _, denominator = text.partition("/")
        try:
            return float(numerator) / float(denominator)
        except ZeroDivisionError:
            # Raise ValueError so argparse prints a clean usage error.
            raise ValueError(f"zero denominator in {text!r}") from None
    return float(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Run the Capstan evaluation grid (parallel, profile-cached).",
    )
    parser.add_argument(
        "--apps",
        help="comma-separated application names (default: all registered)",
    )
    parser.add_argument(
        "--scale",
        type=_parse_scale,
        default=1.0 / 64.0,
        help="dataset scale, e.g. 1/64 or 0.015625 (default: 1/64)",
    )
    parser.add_argument(
        "--pagerank-iterations", type=int, default=2, help="power iterations per PageRank run"
    )
    parser.add_argument(
        "--conv-scale", type=_parse_scale, default=0.125, help="ResNet channel scale"
    )
    parser.add_argument(
        "--backend",
        choices=("vectorized", "reference", "numba"),
        default="vectorized",
        help=(
            "kernel backend (reference = per-element loop kernels; numba = "
            "compiled SpMU/packed kernels when numba is installed, falling "
            "back to the vectorized path otherwise)"
        ),
    )
    _add_memory_budget_argument(parser)
    parser.add_argument(
        "-j", "--workers", type=int, default=None,
        help="process-pool size (default: $REPRO_EVAL_WORKERS or serial)",
    )
    parser.add_argument(
        "--executor",
        choices=_EXECUTOR_CHOICES,
        default=None,
        help="execution backend (default: automatic local/pool choice)",
    )
    parser.add_argument("--no-cache", action="store_true", help="bypass the on-disk profile cache")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"profile cache directory (default: {default_cache_dir()})",
    )
    parser.add_argument(
        "--clear-cache", action="store_true", help="delete cached profiles, then exit"
    )
    parser.add_argument(
        "--prune-cache",
        action="store_true",
        help="delete cached profiles from other code versions, then exit",
    )
    parser.add_argument("--list", action="store_true", help="list the registered grid, then exit")
    parser.add_argument(
        "--keep-going", action="store_true", help="report task failures instead of aborting"
    )
    parser.add_argument("--json", default=None, help="also write the report (with profiles) here")
    return parser


def _parse_axis(text: str) -> Tuple[str, List[Any]]:
    """Parse one ``--axis name=v1,v2,...`` specification."""
    axis, separator, raw = text.partition("=")
    axis = axis.strip()
    if not separator or not raw.strip():
        raise ValueError(f"expected NAME=V1[,V2,...], got {text!r}")
    parser = AXIS_VALUE_PARSERS.get(axis)
    if parser is None:
        known = ", ".join(sorted(AXIS_VALUE_PARSERS))
        raise ValueError(f"unknown axis {axis!r}; known: {known}")
    try:
        values = [parser(value.strip()) for value in raw.split(",") if value.strip()]
    except ValueError as exc:
        raise ValueError(f"bad value for axis {axis!r}: {exc}") from None
    return axis, values


def _parse_axes(parser: argparse.ArgumentParser, specs: List[str]) -> Dict[str, List[Any]]:
    """Collect repeated ``--axis`` options into one axes mapping."""
    axes: Dict[str, List[Any]] = {}
    try:
        for spec in specs:
            axis, values = _parse_axis(spec)
            if axis in axes:
                raise ValueError(
                    f"axis {axis!r} given more than once; list all its values in one --axis"
                )
            axes[axis] = values
    except ValueError as exc:
        parser.error(str(exc))
    return axes


def build_dse_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval dse",
        description=(
            "Design-space exploration: cost the evaluation grid over a family "
            "of platform variants (batched) and report the cycles-vs-area "
            "Pareto frontier."
        ),
    )
    parser.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2[,...]",
        help=(
            "one swept axis (repeatable); known axes: "
            + ", ".join(sorted(AXIS_VALUE_PARSERS))
            + ". Default: lanes=8,16,32 banks=8,16,32"
        ),
    )
    parser.add_argument(
        "--apps", help="comma-separated application names (default: all registered)"
    )
    parser.add_argument(
        "--scale",
        type=_parse_scale,
        default=1.0 / 64.0,
        help="dataset scale, e.g. 1/64 or 0.015625 (default: 1/64)",
    )
    parser.add_argument(
        "--pagerank-iterations", type=int, default=2, help="power iterations per PageRank run"
    )
    parser.add_argument(
        "--conv-scale", type=_parse_scale, default=0.125, help="ResNet channel scale"
    )
    parser.add_argument(
        "--backend",
        choices=("vectorized", "reference", "numba"),
        default="vectorized",
        help="kernel backend (numba = compiled kernels when installed)",
    )
    _add_memory_budget_argument(parser)
    parser.add_argument(
        "-j", "--workers", type=int, default=None,
        help="process-pool size for profile collection",
    )
    parser.add_argument(
        "--executor",
        choices=_EXECUTOR_CHOICES,
        default=None,
        help="execution backend for profile collection (default: automatic local/pool)",
    )
    parser.add_argument("--no-cache", action="store_true", help="bypass the on-disk profile cache")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"profile cache directory (default: {default_cache_dir()})",
    )
    parser.add_argument(
        "--prefill",
        action="store_true",
        help=(
            "warm the SpMU throughput store for every swept variant in one "
            "batched pass before costing (parallel sweeps then start warm)"
        ),
    )
    parser.add_argument(
        "--prefill-only",
        action="store_true",
        help="prefill the SpMU throughput store for the sweep, then exit",
    )
    parser.add_argument(
        "--pareto-only", action="store_true", help="print only the Pareto-frontier variants"
    )
    parser.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="print only the N best variants by gmean cycles (0 = all)",
    )
    parser.add_argument(
        "--search",
        choices=("halving", "evolve"),
        default=None,
        help=(
            "search the space adaptively instead of enumerating it: "
            "successive halving or a seeded evolutionary loop (default "
            "axes then span the full kilovariant structural space)"
        ),
    )
    parser.add_argument(
        "--generations", type=int, default=None,
        help="search generations (halving rungs / evolve generations)",
    )
    parser.add_argument(
        "--population", type=int, default=None,
        help="search batch width (halving rung 0 width / evolve population)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help=(
            "RNG seed threaded through sweep ordering and the search "
            "strategies; equal seeds give byte-identical frontier JSON "
            "(default: 0 for --search, unshuffled sweep order otherwise)"
        ),
    )
    parser.add_argument(
        "--objective",
        default=None,
        metavar="OBJ[,OBJ...]",
        help=(
            "minimized objectives from cycles,area,energy (default: "
            "cycles,area for enumeration; cycles,area,energy for --search)"
        ),
    )
    parser.add_argument(
        "--search-store",
        default=None,
        metavar="DIR",
        help=(
            "search state/result store for --search (default: "
            "$REPRO_SEARCH_STORE or ~/.cache/repro/search; 'none' disables "
            "persistence and resume)"
        ),
    )
    parser.add_argument("--json", default=None, help="also write the full cost grid here")
    return parser


def _parse_objectives(
    parser: argparse.ArgumentParser, spec: Optional[str], default: Tuple[str, ...]
) -> Tuple[str, ...]:
    from .search import OBJECTIVES

    if spec is None:
        return default
    objectives = tuple(name.strip() for name in spec.split(",") if name.strip())
    if not objectives:
        parser.error("--objective needs at least one objective")
    unknown = set(objectives) - set(OBJECTIVES)
    if unknown:
        parser.error(
            f"unknown objectives: {', '.join(sorted(unknown))} "
            f"(choose from {', '.join(OBJECTIVES)})"
        )
    if len(set(objectives)) != len(objectives):
        parser.error("--objective lists an objective twice")
    return objectives


def _dse_search_main(
    parser: argparse.ArgumentParser,
    args: argparse.Namespace,
    axes: Dict[str, list],
    apps: Optional[List[str]],
    cache: object,
    context: "RunContext",
) -> int:
    from .search import (
        DEFAULT_SEARCH_AXES,
        AdaptiveSearch,
        SearchSpace,
        SearchStore,
        make_strategy,
    )

    objectives = _parse_objectives(parser, args.objective, ("cycles", "area", "energy"))
    store: Optional[SearchStore]
    if args.search_store == "none":
        store = None
    elif args.search_store is not None:
        store = SearchStore(Path(args.search_store))
    else:
        store = SearchStore()

    try:
        space = SearchSpace.from_axes(axes or dict(DEFAULT_SEARCH_AXES))
        strategy = make_strategy(
            args.search, population=args.population, generations=args.generations
        )
        runner = ExperimentRunner(
            context=context, workers=args.workers, cache=cache, executor=args.executor
        )
        report = runner.run(apps=apps)
        profiles = [r.profile for r in report.results if r.profile is not None]
        engine = AdaptiveSearch(
            space,
            strategy,
            profiles,
            objectives=objectives,
            seed=args.seed or 0,
            store=store,
        )
        result = engine.run()
    except CapstanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(
        f"DSE search ({result.strategy}, seed={result.seed}): explored "
        f"{len(result.names)} of {result.space_size} variants in "
        f"{result.generations} generations "
        f"({result.evaluations:.0f} full-grid-equivalent evaluations, "
        f"{len(result.tasks)} profiles)"
    )
    frontier_rows = result.frontier_rows()
    name_width = max((len(row["name"]) for row in frontier_rows), default=4)
    header = "  ".join(f"{obj:>14}" for obj in result.objectives)
    print(f"  {'variant':<{name_width}}  {header}")
    for row in frontier_rows:
        cols = "  ".join(f"{row[obj]:>14.5g}" for obj in result.objectives)
        print(f"  {row['name']:<{name_width}}  {cols}")
    print(f"Pareto frontier: {len(frontier_rows)} of {len(result.names)} explored")

    if args.json:
        payload = result.to_dict()
        payload["scale"] = args.scale
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _dse_main(argv: List[str]) -> int:
    parser = build_dse_parser()
    args = parser.parse_args(argv)
    _apply_memory_budget(parser, args)

    if args.search is None:
        for flag in ("generations", "population"):
            if getattr(args, flag) is not None:
                parser.error(f"--{flag} requires --search")
        if args.search_store is not None:
            parser.error("--search-store requires --search")
    elif args.prefill or args.prefill_only:
        parser.error("--prefill/--prefill-only only apply to exhaustive enumeration")

    axes = _parse_axes(parser, args.axis)
    if not axes and args.search is None:
        axes = {"lanes": [8, 16, 32], "banks": [8, 16, 32]}

    apps = [name.strip() for name in args.apps.split(",") if name.strip()] if args.apps else None
    unknown = set(apps or ()) - set(app_order())
    if unknown:
        print(f"unknown applications: {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    cache: object
    if args.no_cache:
        cache = False
    elif args.cache_dir is not None:
        cache = ProfileCache(root=args.cache_dir)
    else:
        cache = True

    if args.prefill or args.prefill_only:
        from .sweep import sweep

        try:
            variants = sweep(**axes)
            for platform in variants.values():
                platform.config.validate()
            resolved = prefill_throughputs(variants.values())
        except CapstanError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"prefilled SpMU throughputs for {resolved} distinct variants")
        if args.prefill_only:
            return 0

    context = RunContext(
        scale=args.scale,
        pagerank_iterations=args.pagerank_iterations,
        conv_scale=args.conv_scale,
        backend=_resolve_backend(args.backend),
    )

    if args.search is not None:
        return _dse_search_main(parser, args, axes, apps, cache, context)

    objectives = _parse_objectives(parser, args.objective, ("cycles", "area"))
    energy = "energy" in objectives
    try:
        result = explore(
            apps=apps,
            context=context,
            workers=args.workers,
            cache=cache,
            executor=args.executor,
            energy=energy,
            seed=args.seed,
            **axes,
        )
    except CapstanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.top > 0 and not args.pareto_only:
        rows = result.top_rows(args.top)
    else:
        rows = sorted(result.rows(), key=lambda row: row["gmean_cycles"])
        if args.pareto_only:
            rows = [row for row in rows if row["pareto"]]
        if args.top > 0:
            rows = rows[: args.top]

    axis_summary = ", ".join(f"{axis}={len(values)}" for axis, values in axes.items())
    print(
        f"DSE: {len(result.variants)} variants ({axis_summary}) x "
        f"{len(result.tasks)} profiles (scale={args.scale:g})"
    )
    name_width = max(len(row["name"]) for row in rows) if rows else 4
    energy_header = f"  {'energy mJ':>11}" if energy else ""
    print(
        f"  {'variant':<{name_width}}  {'gmean cycles':>13}  {'area mm^2':>9}"
        f"{energy_header}  pareto"
    )
    for row in rows:
        marker = "*" if row["pareto"] else ""
        energy_col = f"  {row['gmean_energy_mj']:>11.4g}" if energy else ""
        print(
            f"  {row['name']:<{name_width}}  {row['gmean_cycles']:>13.4g}  "
            f"{row['area_mm2']:>9.1f}{energy_col}  {marker}"
        )
    frontier = result.frontier(objectives if energy else None)
    print(f"Pareto frontier ({len(frontier)}): {', '.join(frontier)}")

    if args.json:
        payload = {
            "scale": args.scale,
            "axes": {
                axis: [getattr(v, "value", v) for v in values] for axis, values in axes.items()
            },
            "tasks": [{"app": app, "dataset": dataset} for app, dataset in result.tasks],
            "variants": result.rows(),
            "frontier": list(frontier),
        }
        if args.seed is not None:
            payload["seed"] = args.seed
        if result.batch is not None:
            payload["cycles"] = [[float(c) for c in row] for row in result.cycles]
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _add_run_db_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--db",
        default=None,
        help=f"run-store database (default: $REPRO_RUN_DB or {default_run_db()})",
    )


def _open_run_store(args: argparse.Namespace) -> "RunStore":
    return RunStore(args.db) if args.db else RunStore()


def build_bench_history_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval bench-history",
        description=(
            "Render recorded bench runs from the experiment store, newest "
            "first, with optional monotonic-drift detection."
        ),
    )
    _add_run_db_argument(parser)
    parser.add_argument(
        "--limit", type=int, default=10, help="how many runs to show (default 10)"
    )
    parser.add_argument(
        "--trends",
        action="store_true",
        help="also scan the gated metrics for monotonic drift",
    )
    parser.add_argument(
        "--expectations",
        default=None,
        help="expectations TOML naming the metrics to trend-check",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="render markdown instead of plain text"
    )
    parser.add_argument("--json", default=None, help="also write the history here")
    return parser


def _bench_history_main(argv: List[str]) -> int:
    from ..eval import regression

    parser = build_bench_history_parser()
    args = parser.parse_args(argv)
    try:
        expectations = (
            regression.load_expectations(args.expectations) if args.expectations else None
        )
    except (CapstanError, OSError) as exc:
        parser.error(str(exc))
    with _open_run_store(args) as store:
        runs = store.runs(limit=args.limit)
        if not runs:
            print(f"no runs recorded in {store.path}")
            return 0
        print(regression.format_history(runs, markdown=args.markdown))
        trends = regression.detect_trends(store, expectations) if args.trends else []
        if args.trends:
            print()
            print(regression.format_trends(trends, markdown=args.markdown))
        if args.json:
            payload = {
                "db": str(store.path),
                "runs": regression.history_rows(runs),
                "records": [run.to_dict() for run in runs],
            }
            if args.trends:
                payload["trends"] = [trend.to_dict() for trend in trends]
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
            print(f"wrote {args.json}")
    return 0


def build_bench_compare_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval bench-compare",
        description=(
            "Evaluate one recorded bench run (default: the latest) against "
            "the declarative expectations and a baseline; exit 1 when the "
            "comparison report fails."
        ),
    )
    _add_run_db_argument(parser)
    parser.add_argument(
        "--run", type=int, default=None, help="run id to evaluate (default: latest)"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="NAME",
        help="named baseline snapshot in the store to ratio-check against",
    )
    parser.add_argument(
        "--baseline-run",
        type=int,
        default=None,
        metavar="ID",
        help="ratio-check against this recorded run instead of a named baseline",
    )
    parser.add_argument(
        "--baseline-json",
        default=None,
        metavar="PATH",
        help="ratio-check against a committed JSON record (e.g. BENCH_runner.json)",
    )
    parser.add_argument(
        "--expectations",
        default=None,
        help="expectations TOML (default: the built-in gate)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="render markdown instead of plain text"
    )
    parser.add_argument("--json", default=None, help="also write the full report here")
    return parser


def _bench_compare_main(argv: List[str]) -> int:
    from ..eval import regression

    parser = build_bench_compare_parser()
    args = parser.parse_args(argv)
    given = [
        name
        for name, value in (
            ("--baseline", args.baseline),
            ("--baseline-run", args.baseline_run),
            ("--baseline-json", args.baseline_json),
        )
        if value is not None
    ]
    if len(given) > 1:
        parser.error(f"{' and '.join(given)} are mutually exclusive")
    try:
        expectations = (
            regression.load_expectations(args.expectations) if args.expectations else None
        )
    except (CapstanError, OSError) as exc:
        parser.error(str(exc))
    with _open_run_store(args) as store:
        run = store.latest_run() if args.run is None else store.load_run(args.run)
        if run is None:
            which = "no runs recorded" if args.run is None else f"no run {args.run}"
            print(f"{which} in {store.path}", file=sys.stderr)
            return 2
        baseline: object = None
        if args.baseline is not None:
            baseline = store.baseline(args.baseline)
            if baseline is None:
                print(f"no baseline {args.baseline!r} in {store.path}", file=sys.stderr)
                return 2
        elif args.baseline_run is not None:
            base_run = store.load_run(args.baseline_run)
            if base_run is None:
                print(f"no run {args.baseline_run} in {store.path}", file=sys.stderr)
                return 2
            baseline = base_run.record
        elif args.baseline_json is not None:
            baseline = json.loads(Path(args.baseline_json).read_text())
        report = regression.compare_to_baseline(run.record, baseline, expectations)
        formatter = (
            regression.format_comparison_markdown
            if args.markdown
            else regression.format_comparison_report
        )
        print(formatter(report))
        if args.json:
            payload = report.to_dict()
            payload["run"]["id"] = run.id
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
            print(f"wrote {args.json}")
    return 0 if report.passed else 1


def build_bench_baseline_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval bench-baseline",
        description="Freeze one recorded run (default: the latest) as a named baseline.",
    )
    parser.add_argument("name", help="baseline name (re-freezing a name replaces it)")
    _add_run_db_argument(parser)
    parser.add_argument(
        "--run", type=int, default=None, help="run id to freeze (default: latest)"
    )
    return parser


def _bench_baseline_main(argv: List[str]) -> int:
    parser = build_bench_baseline_parser()
    args = parser.parse_args(argv)
    with _open_run_store(args) as store:
        try:
            baseline = store.snapshot_baseline(args.name, run_id=args.run)
        except CapstanError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"froze baseline {baseline.name!r} from run {baseline.run_id} "
            f"(scale {baseline.scale}, code {baseline.fingerprint[:12]})"
        )
    return 0


def build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval worker",
        description=(
            "Work-unit worker: read JSON-line requests "
            '({"id": N, "payload": {"kind": ...}}) from stdin, execute each '
            "unit, and answer one JSON line per request on stdout. This is "
            "the entry point the subprocess executor drives, locally or "
            "through any command prefix (e.g. ssh)."
        ),
    )
    parser.add_argument(
        "--once", action="store_true", help="answer a single request, then exit"
    )
    return parser


def _worker_main(argv: List[str]) -> int:
    import time
    import traceback

    from . import faults, jobs
    from .cache import _json_default

    args = build_worker_parser().parse_args(argv)
    # Stdout is the protocol channel; anything a workload prints must not
    # corrupt it, so the units run with stdout aliased to stderr.
    protocol = sys.stdout
    sys.stdout = sys.stderr
    # Chaos seam: an armed slow_start fault (REPRO_FAULT_PLAN) delays this
    # worker before it answers its first request.
    faults.inject_startup_fault()
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            payload = request["payload"]
        except (ValueError, KeyError, TypeError):
            response: Dict[str, Any] = {
                "id": None,
                "ok": False,
                "error": f"malformed request line: {line[:200]!r}",
            }
            protocol.write(json.dumps(response) + "\n")
            protocol.flush()
            continue
        started = time.perf_counter()
        try:
            result = jobs.execute_unit(payload)
            response = {
                "id": request.get("id"),
                "ok": True,
                "result": jobs.serialize_result(payload["kind"], result),
                "duration_s": time.perf_counter() - started,
            }
        except Exception as exc:  # noqa: BLE001 - reported per request
            response = {
                "id": request.get("id"),
                "ok": False,
                "error": traceback.format_exception_only(type(exc), exc)[-1].strip(),
                "traceback": traceback.format_exc(),
                "duration_s": time.perf_counter() - started,
            }
        fault = faults.take_protocol_fault(payload)
        if fault is not None and fault.kind == "malformed_line":
            # Garbage instead of the response: the executor must kill this
            # worker and retry the unit on a fresh one.
            protocol.write("!!! not json !!!\n")
            protocol.flush()
            continue
        if fault is not None and fault.kind == "truncated_line":
            # A torn write from a dying process: half the bytes, no
            # newline, then death -- the reader sees EOF mid-line.
            text = json.dumps(response, default=_json_default)
            protocol.write(text[: max(1, len(text) // 2)])
            protocol.flush()
            os._exit(fault.exit_code)
        protocol.write(json.dumps(response, default=_json_default) + "\n")
        protocol.flush()
        if args.once:
            break
    return 0


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval sweep",
        description=(
            "Sharded, resumable sweeps: submit the profile grid (or, with "
            "--axis, a DSE cross-product) as a job of persisted work units "
            "and execute it on a pluggable executor. Submitting the same "
            "grid again resumes the existing job; done units never re-run."
        ),
    )
    parser.add_argument("--name", default=None, help="job name (informational)")
    parser.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2[,...]",
        help=(
            "sweep a DSE cross-product instead of the profile grid "
            "(repeatable); known axes: " + ", ".join(sorted(AXIS_VALUE_PARSERS))
        ),
    )
    parser.add_argument(
        "--apps", help="comma-separated application names (default: all registered)"
    )
    parser.add_argument(
        "--scale",
        type=_parse_scale,
        default=1.0 / 64.0,
        help="dataset scale, e.g. 1/64 or 0.015625 (default: 1/64)",
    )
    parser.add_argument(
        "--pagerank-iterations", type=int, default=2, help="power iterations per PageRank run"
    )
    parser.add_argument(
        "--conv-scale", type=_parse_scale, default=0.125, help="ResNet channel scale"
    )
    parser.add_argument(
        "--backend",
        choices=("vectorized", "reference", "numba"),
        default="vectorized",
        help="kernel backend (numba = compiled kernels when installed)",
    )
    _add_memory_budget_argument(parser)
    parser.add_argument(
        "--executor",
        choices=_EXECUTOR_CHOICES,
        default="local",
        help="execution backend for the units (default: local)",
    )
    parser.add_argument(
        "-j", "--workers", type=int, default=1, help="executor parallelism (default: 1)"
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S", help="per-unit timeout in seconds"
    )
    parser.add_argument(
        "--retries", type=int, default=0, help="extra attempts per failed unit (default: 0)"
    )
    parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help=(
            "dead-letter ceiling: a unit whose cumulative attempts reach N "
            "(or that fails permanently) moves to 'dead' and is never "
            "re-claimed (default: retry forever on resume)"
        ),
    )
    parser.add_argument(
        "--lease", type=float, default=None, metavar="S",
        help=(
            "lease length in seconds for claimed units; a heartbeat "
            "refreshes it while a wave executes (default: 60)"
        ),
    )
    parser.add_argument(
        "--stop-on-error",
        action="store_true",
        help="cancel outstanding units after the first failure",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"profile cache the units write into (default: {default_cache_dir()})",
    )
    _add_run_db_argument(parser)
    parser.add_argument(
        "--resume", type=int, default=None, metavar="JOB",
        help="run an existing job by id instead of submitting a new spec",
    )
    parser.add_argument(
        "--max-units", type=int, default=None, metavar="N",
        help="process at most N units this invocation, leaving the rest claimable",
    )
    parser.add_argument(
        "--status", type=int, default=None, metavar="JOB",
        help=(
            "print one job's state, unit counts, per-unit attempts, dead "
            "units, and active lease owners, then exit"
        ),
    )
    parser.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help=(
            "with --status: re-print the status every SECONDS until the "
            "job reaches a terminal state"
        ),
    )
    parser.add_argument("--jobs", action="store_true", help="list jobs, then exit")
    parser.add_argument("--json", default=None, help="also write the run summary here")
    return parser


def _print_sweep_status(store: Any, job_id: int) -> Optional[str]:
    """Print one job's status (counts, attempts, leases); returns its state."""
    import time

    from .jobs import UNIT_DEAD, UNIT_FAILED, UNIT_RUNNING

    job = store.job(job_id)
    if job is None:
        print(f"no job {job_id} in {store.path}", file=sys.stderr)
        return None
    counts = store.unit_states(job.id)
    print(f"job {job.id} ({job.name}): state={job.state}")
    for state, n in sorted(counts.items()):
        print(f"  {state}: {n}")
    now = time.time()
    for unit in store.units(job.id):
        if unit.state == UNIT_RUNNING:
            if unit.lease_owner:
                expires = unit.lease_expires_at or now
                lease = f"lease {unit.lease_owner} expires in {expires - now:+.0f}s"
            else:
                lease = "no lease (stale pre-lease row)"
            print(
                f"  running unit {unit.seq} ({unit.kind}): "
                f"{unit.attempts} attempts, {lease}"
            )
        elif unit.state in (UNIT_FAILED, UNIT_DEAD):
            print(
                f"  {unit.state} unit {unit.seq} ({unit.kind}): "
                f"{unit.attempts} attempts, {unit.error}"
            )
    return job.state


def _sweep_main(argv: List[str]) -> int:
    from .executors import create_executor
    from .jobs import DEFAULT_LEASE_S, JOB_DONE, JOB_FAILED, JobSpec, JobStore

    parser = build_sweep_parser()
    args = parser.parse_args(argv)
    _apply_memory_budget(parser, args)
    axes = _parse_axes(parser, args.axis)
    apps = [name.strip() for name in args.apps.split(",") if name.strip()] if args.apps else None
    unknown = set(apps or ()) - set(app_order())
    if unknown:
        print(f"unknown applications: {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    with JobStore(Path(args.db) if args.db else None) as store:
        if args.jobs:
            for job in store.jobs():
                counts = store.unit_states(job.id)
                summary = ", ".join(f"{n} {state}" for state, n in sorted(counts.items()))
                print(f"job {job.id} [{job.state:>7}] {job.name}: {summary}")
            return 0
        if args.status is not None:
            import time

            while True:
                state = _print_sweep_status(store, args.status)
                if state is None:
                    return 2
                if args.watch is None or state in (JOB_DONE, JOB_FAILED):
                    return 0
                time.sleep(args.watch)
                print()

        if args.resume is not None:
            job = store.job(args.resume)
            if job is None:
                print(f"no job {args.resume} in {store.path}", file=sys.stderr)
                return 2
        else:
            context = RunContext(
                scale=args.scale,
                pagerank_iterations=args.pagerank_iterations,
                conv_scale=args.conv_scale,
                backend=_resolve_backend(args.backend),
            )
            try:
                if axes:
                    spec = JobSpec.dse_grid(
                        axes,
                        apps=apps,
                        context=context,
                        name=args.name or "dse-grid",
                    )
                else:
                    spec = JobSpec.profile_grid(
                        apps,
                        context,
                        cache_root=args.cache_dir,
                        name=args.name or "profile-grid",
                    )
            except CapstanError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            existing = store.job_by_key(spec.key)
            job = store.submit(spec)
            verb = "resuming" if existing is not None else "submitted"
            print(f"{verb} job {job.id} ({job.name}, {len(spec.units)} units)")

        executor = create_executor(
            args.executor,
            workers=args.workers,
            timeout_s=args.timeout,
            retries=args.retries,
        )
        try:
            summary = store.run_job(
                job.id, executor, max_units=args.max_units,
                stop_on_error=args.stop_on_error,
                max_attempts=args.max_attempts,
                lease_s=args.lease if args.lease is not None else DEFAULT_LEASE_S,
            )
        except CapstanError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        counts = ", ".join(f"{n} {state}" for state, n in sorted(summary.counts.items()))
        print(
            f"job {job.id} state={summary.state}: executed {summary.executed} units "
            f"({summary.completed} ok, {summary.failed} failed, "
            f"{summary.dead} dead, {summary.cancelled} cancelled) in "
            f"{summary.wall_time_s:.2f}s on {executor.name}/{executor.workers}; now {counts}"
        )
        if summary.remaining:
            print(
                f"{summary.remaining} units remain; rerun with --resume {job.id} to continue"
            )
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(summary.to_dict(), handle, indent=2)
            print(f"wrote {args.json}")
        return 1 if (summary.failed or summary.dead) else 0


_SUBCOMMANDS: Dict[str, Callable[[List[str]], int]] = {
    "bench-history": _bench_history_main,
    "bench-compare": _bench_compare_main,
    "bench-baseline": _bench_baseline_main,
    "sweep": _sweep_main,
    "worker": _worker_main,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "dse":
        return _dse_main(argv[1:])
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    _apply_memory_budget(parser, args)

    if args.list:
        for app, datasets in app_datasets().items():
            print(f"{app}: {', '.join(datasets)}")
        return 0

    if args.clear_cache or args.prune_cache:
        target = ProfileCache(root=args.cache_dir) if args.cache_dir else ProfileCache()
        removed = target.clear() if args.clear_cache else target.prune()
        verb = "removed" if args.clear_cache else "pruned"
        print(f"{verb} {removed} cached profiles from {target.root}")
        return 0

    cache: object
    if args.no_cache:
        cache = False
    elif args.cache_dir is not None:
        cache = ProfileCache(root=args.cache_dir)
    else:
        cache = True

    apps = [name.strip() for name in args.apps.split(",") if name.strip()] if args.apps else None
    unknown = set(apps or ()) - set(app_order())
    if unknown:
        print(f"unknown applications: {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    context = RunContext(
        scale=args.scale,
        pagerank_iterations=args.pagerank_iterations,
        conv_scale=args.conv_scale,
        backend=_resolve_backend(args.backend),
    )
    runner = ExperimentRunner(
        context=context,
        workers=args.workers,
        cache=cache,
        raise_on_error=not args.keep_going,
        executor=args.executor,
    )
    try:
        report = runner.run(apps=apps)
    except CapstanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    from ..eval.report import format_run_report

    print(format_run_report(report, title=f"Evaluation grid (scale={args.scale:g})"))

    if args.json:
        payload = {
            "scale": args.scale,
            "workers": report.workers,
            "wall_time_s": report.wall_time_s,
            "tasks": [
                {
                    "app": r.app,
                    "dataset": r.dataset,
                    "status": r.status,
                    "duration_s": r.duration_s,
                    "error": r.error,
                    "profile": profile_to_dict(r.profile) if r.profile is not None else None,
                }
                for r in report.results
            ],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    return 1 if report.errors() else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
