"""Parallel, cached execution of the (application x dataset) grid.

:class:`ExperimentRunner` turns the registry's specs into a task grid,
satisfies what it can from the on-disk profile cache, fans the remaining
functional runs out over a pluggable executor (see
:mod:`repro.runtime.executors`), and returns a :class:`RunReport` of
structured per-task results in deterministic (registry) order --
independent of completion order, worker count, executor, or cache state.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..apps.profile import WorkloadProfile
from . import registry
from .cache import ProfileCache, cache_enabled
from .executors import Executor, LocalExecutor, PoolExecutor, UnitOutcome, create_executor
from .executors.base import OUTCOME_ERROR, OUTCOME_OK, OUTCOME_TIMEOUT, WorkerError
from .jobs import context_to_dict
from .registry import RunContext

#: Task states a :class:`TaskResult` can report.
STATUS_OK = "ok"
STATUS_CACHED = "cached"
STATUS_ERROR = "error"


@dataclass
class TaskResult:
    """Outcome of one (application, dataset) evaluation task.

    Attributes:
        app: Application name.
        dataset: Dataset name.
        status: ``"ok"`` (executed), ``"cached"`` (served from the profile
            cache), or ``"error"``.
        duration_s: Wall time spent on this task; for cache hits this is
            the measured cache-lookup time, so profiling a warm run shows
            where its (small) time actually goes.
        profile: The collected profile (``None`` on error).
        error: One-line error description (``None`` unless failed).
        classification: For failures, ``"transient"`` or ``"permanent"``
            (:mod:`repro.runtime.health`) -- callers deciding whether a
            retry is worthwhile read this instead of re-parsing ``error``.
    """

    app: str
    dataset: str
    status: str
    duration_s: float = 0.0
    profile: Optional[WorkloadProfile] = None
    error: Optional[str] = None
    classification: Optional[str] = None


@dataclass
class RunReport:
    """All task results of one runner invocation, in registry order."""

    context: RunContext
    results: List[TaskResult] = field(default_factory=list)
    workers: int = 1
    wall_time_s: float = 0.0
    executor: str = "local"

    def profiles(self) -> Dict[Tuple[str, str], WorkloadProfile]:
        """Successful profiles keyed by ``(app, dataset)``."""
        return {
            (r.app, r.dataset): r.profile
            for r in self.results
            if r.profile is not None
        }

    def errors(self) -> List[TaskResult]:
        """The failed tasks, if any."""
        return [r for r in self.results if r.status == STATUS_ERROR]

    def executed_count(self) -> int:
        """Tasks that ran functionally (cache misses)."""
        return sum(1 for r in self.results if r.status == STATUS_OK)

    def cached_count(self) -> int:
        """Tasks served from the profile cache."""
        return sum(1 for r in self.results if r.status == STATUS_CACHED)


class _RemoteTraceback(Exception):
    """Carries a worker's formatted traceback across the process boundary."""

    def __init__(self, text: str):
        super().__init__(text)
        self.text = text

    def __str__(self) -> str:
        return f"\n{self.text}"


#: Minimum pending tasks before a process pool is worth its spawn cost.
MIN_TASKS_FOR_POOL = 2

#: One warning per process for a bad REPRO_EVAL_WORKERS, not one per call.
_warned_bad_workers = False


def default_workers() -> int:
    """Worker count from ``REPRO_EVAL_WORKERS`` (default: serial).

    An unparseable value falls back to serial with a (once per process)
    warning -- a silently ignored ``REPRO_EVAL_WORKERS=8x`` otherwise looks
    exactly like a slow machine.
    """
    global _warned_bad_workers
    raw = os.environ.get("REPRO_EVAL_WORKERS", "1")
    try:
        return max(1, int(raw))
    except ValueError:
        if not _warned_bad_workers:
            _warned_bad_workers = True
            warnings.warn(
                f"ignoring unparseable REPRO_EVAL_WORKERS={raw!r}; running serial",
                RuntimeWarning,
                stacklevel=2,
            )
        return 1


def pool_is_profitable(workers: int, pending_tasks: int) -> bool:
    """Whether fanning ``pending_tasks`` over ``workers`` can pay off.

    A process pool on a single-core machine only adds spawn and pickling
    overhead (the seed benchmark measured a 0.94x "speedup" on one core),
    and so does a pool with almost nothing to run. Serial execution is
    used whenever either holds.
    """
    if workers <= 1 or pending_tasks < MIN_TASKS_FOR_POOL:
        return False
    return (os.cpu_count() or 1) > 1


class ExperimentRunner:
    """Runs registered applications over their datasets, cached and parallel.

    The runner is a thin client of the executor layer: it plans the grid,
    serves cache hits, and hands the pending cells to an executor as
    ``profile`` work units (the same payloads ``repro-eval worker``
    executes remotely).

    Args:
        context: Run parameters shared by every task.
        workers: Parallelism; ``1`` runs serially in-process and ``None``
            reads ``REPRO_EVAL_WORKERS`` (default serial). Even with
            ``workers > 1`` the default executor falls back to serial when
            the machine has a single core or too few tasks are pending for
            a pool to pay off (see :func:`pool_is_profitable`).
        cache: ``True`` (default) uses the default on-disk profile cache,
            ``False``/``None`` disables caching, or pass a
            :class:`ProfileCache` instance. The
            ``REPRO_PROFILE_CACHE_DISABLE`` kill switch overrides ``True``.
        raise_on_error: Re-raise the first task failure (default). When
            ``False``, failures are reported as ``"error"`` task results.
        executor: ``None`` picks local/pool automatically per run; a name
            (``"local"``/``"pool"``/``"subprocess"``) builds that executor
            with ``workers``; or pass a configured
            :class:`~repro.runtime.executors.base.Executor` instance.
    """

    def __init__(
        self,
        context: Optional[RunContext] = None,
        workers: Optional[int] = None,
        cache: Union[ProfileCache, bool, None] = True,
        raise_on_error: bool = True,
        executor: Union[str, Executor, None] = None,
    ):
        self.context = context or RunContext()
        self.workers = default_workers() if workers is None else max(1, int(workers))
        if cache is True:
            self.cache: Optional[ProfileCache] = ProfileCache() if cache_enabled() else None
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.raise_on_error = raise_on_error
        self.executor = executor

    def tasks(self, apps: Optional[Sequence[str]] = None) -> List[Tuple[str, str]]:
        """The (app, dataset) grid in deterministic registry order."""
        names = list(apps) if apps is not None else list(registry.app_order())
        grid: List[Tuple[str, str]] = []
        for name in names:
            spec = registry.get_spec(name)
            grid.extend((name, dataset) for dataset in spec.datasets)
        return grid

    def run(self, apps: Optional[Sequence[str]] = None) -> RunReport:
        """Evaluate the grid and return per-task results in grid order."""
        started = time.perf_counter()
        grid = self.tasks(apps)
        results: Dict[Tuple[str, str], TaskResult] = {}

        pending: List[Tuple[str, str]] = []
        for app, dataset in grid:
            lookup_started = time.perf_counter()
            cached = self._load_cached(app, dataset)
            if cached is not None:
                results[(app, dataset)] = TaskResult(
                    app=app,
                    dataset=dataset,
                    status=STATUS_CACHED,
                    duration_s=time.perf_counter() - lookup_started,
                    profile=cached,
                )
            else:
                pending.append((app, dataset))

        executor = self._resolve_executor(len(pending))
        if pending:
            context_dict = context_to_dict(self.context)
            payloads = [
                # cache=False: the runner owns caching through self.cache
                # (possibly a custom instance), so units run bare.
                {"kind": "profile", "app": app, "dataset": dataset,
                 "context": context_dict, "cache": False}
                for app, dataset in pending
            ]
            outcomes = executor.run_units(payloads, stop_on_error=self.raise_on_error)
            if self.raise_on_error:
                # Surface the actual failure, not a unit that merely got
                # cancelled in its wake (stop_on_error cancels the rest).
                for (app, dataset), outcome in zip(pending, outcomes):
                    if outcome.status in (OUTCOME_ERROR, OUTCOME_TIMEOUT):
                        raise self._failure_exception(app, dataset, outcome)
            for (app, dataset), outcome in zip(pending, outcomes):
                self._record(app, dataset, outcome, results)

        return RunReport(
            context=self.context,
            results=[results[task] for task in grid],
            workers=self.workers,
            wall_time_s=time.perf_counter() - started,
            executor=executor.name,
        )

    def _resolve_executor(self, pending_tasks: int) -> Executor:
        """The executor for this run (see the ``executor`` constructor arg)."""
        if isinstance(self.executor, Executor):
            return self.executor
        if isinstance(self.executor, str):
            return create_executor(self.executor, workers=self.workers)
        if pool_is_profitable(self.workers, pending_tasks):
            return PoolExecutor(self.workers)
        return LocalExecutor(self.workers)

    def _key(self, app: str, dataset: str) -> str:
        context_fields = registry.get_spec(app).context_fields
        return self.cache.key(app, dataset, self.context, context_fields=context_fields)

    def _load_cached(self, app: str, dataset: str) -> Optional[WorkloadProfile]:
        if self.cache is None:
            return None
        return self.cache.load(self._key(app, dataset))

    def _record(
        self,
        app: str,
        dataset: str,
        outcome: UnitOutcome,
        results: Dict[Tuple[str, str], TaskResult],
    ) -> None:
        """Turn one unit outcome into a TaskResult (raising if configured)."""
        if outcome.status != OUTCOME_OK:
            if self.raise_on_error:
                raise self._failure_exception(app, dataset, outcome)
            error = outcome.error or outcome.status
            results[(app, dataset)] = TaskResult(
                app=app,
                dataset=dataset,
                status=STATUS_ERROR,
                duration_s=outcome.duration_s,
                error=error,
                classification=outcome.classification,
            )
            return
        profile = outcome.result
        if self.cache is not None:
            self.cache.store(self._key(app, dataset), profile)
        results[(app, dataset)] = TaskResult(
            app=app,
            dataset=dataset,
            status=STATUS_OK,
            duration_s=outcome.duration_s,
            profile=profile,
        )

    @staticmethod
    def _failure_exception(app: str, dataset: str, outcome: UnitOutcome) -> BaseException:
        """The exception to re-raise for a failed unit.

        Prefers the original exception object; when it crossed a process
        boundary the worker-side traceback is chained so the failure site
        stays visible.
        """
        exc = outcome.exception
        if exc is None:
            return WorkerError(
                f"{app}/{dataset} failed: {outcome.error or outcome.status}",
                outcome.traceback,
            )
        if exc.__traceback__ is None and outcome.traceback:
            exc.__cause__ = _RemoteTraceback(outcome.traceback)
        return exc
