"""Parallel, cached execution of the (application x dataset) grid.

:class:`ExperimentRunner` turns the registry's specs into a task grid,
satisfies what it can from the on-disk profile cache, fans the remaining
functional runs out over a process pool, and returns a :class:`RunReport`
of structured per-task results in deterministic (registry) order --
independent of completion order, worker count, or cache state.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..apps.profile import WorkloadProfile
from . import registry
from .cache import ProfileCache, cache_enabled
from .registry import RunContext

#: Task states a :class:`TaskResult` can report.
STATUS_OK = "ok"
STATUS_CACHED = "cached"
STATUS_ERROR = "error"


@dataclass
class TaskResult:
    """Outcome of one (application, dataset) evaluation task.

    Attributes:
        app: Application name.
        dataset: Dataset name.
        status: ``"ok"`` (executed), ``"cached"`` (served from the profile
            cache), or ``"error"``.
        duration_s: Wall time spent on this task (0 for cache hits).
        profile: The collected profile (``None`` on error).
        error: One-line error description (``None`` unless failed).
    """

    app: str
    dataset: str
    status: str
    duration_s: float = 0.0
    profile: Optional[WorkloadProfile] = None
    error: Optional[str] = None


@dataclass
class RunReport:
    """All task results of one runner invocation, in registry order."""

    context: RunContext
    results: List[TaskResult] = field(default_factory=list)
    workers: int = 1
    wall_time_s: float = 0.0

    def profiles(self) -> Dict[Tuple[str, str], WorkloadProfile]:
        """Successful profiles keyed by ``(app, dataset)``."""
        return {
            (r.app, r.dataset): r.profile
            for r in self.results
            if r.profile is not None
        }

    def errors(self) -> List[TaskResult]:
        """The failed tasks, if any."""
        return [r for r in self.results if r.status == STATUS_ERROR]

    def executed_count(self) -> int:
        """Tasks that ran functionally (cache misses)."""
        return sum(1 for r in self.results if r.status == STATUS_OK)

    def cached_count(self) -> int:
        """Tasks served from the profile cache."""
        return sum(1 for r in self.results if r.status == STATUS_CACHED)


class _RemoteTraceback(Exception):
    """Carries a worker's formatted traceback across the process boundary."""

    def __init__(self, text: str):
        super().__init__(text)
        self.text = text

    def __str__(self) -> str:
        return f"\n{self.text}"


def _execute_task(app: str, dataset: str, context: RunContext) -> Tuple[str, object, float]:
    """Run one task; top-level so process-pool workers can unpickle it.

    Returns a ``(tag, payload, duration)`` triple -- ``("ok", profile, s)``
    or ``("error", (exception, traceback text), s)`` -- so the parent gets
    worker-measured durations and full tracebacks for failures too (a
    raised exception would only carry the parent's wait time, and pickling
    strips ``__traceback__``).
    """
    # A freshly spawned worker has not imported the app modules; the
    # registry self-populates on first lookup (see _ensure_apps_imported).
    start = time.perf_counter()
    try:
        profile = registry.execute(app, dataset, context)
    except Exception as exc:  # noqa: BLE001 - reported per task
        return STATUS_ERROR, (exc, traceback.format_exc()), time.perf_counter() - start
    return STATUS_OK, profile, time.perf_counter() - start


#: Minimum pending tasks before a process pool is worth its spawn cost.
MIN_TASKS_FOR_POOL = 2


def default_workers() -> int:
    """Worker count from ``REPRO_EVAL_WORKERS`` (default: serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_EVAL_WORKERS", "1")))
    except ValueError:
        return 1


def pool_is_profitable(workers: int, pending_tasks: int) -> bool:
    """Whether fanning ``pending_tasks`` over ``workers`` can pay off.

    A process pool on a single-core machine only adds spawn and pickling
    overhead (the seed benchmark measured a 0.94x "speedup" on one core),
    and so does a pool with almost nothing to run. Serial execution is
    used whenever either holds.
    """
    if workers <= 1 or pending_tasks < MIN_TASKS_FOR_POOL:
        return False
    return (os.cpu_count() or 1) > 1


class ExperimentRunner:
    """Runs registered applications over their datasets, cached and parallel.

    Args:
        context: Run parameters shared by every task.
        workers: Process-pool size; ``1`` runs serially in-process and
            ``None`` reads ``REPRO_EVAL_WORKERS`` (default serial). Even
            with ``workers > 1`` the runner falls back to serial when the
            machine has a single core or too few tasks are pending for a
            pool to pay off (see :func:`pool_is_profitable`).
        cache: ``True`` (default) uses the default on-disk profile cache,
            ``False``/``None`` disables caching, or pass a
            :class:`ProfileCache` instance. The
            ``REPRO_PROFILE_CACHE_DISABLE`` kill switch overrides ``True``.
        raise_on_error: Re-raise the first task failure (default). When
            ``False``, failures are reported as ``"error"`` task results.
    """

    def __init__(
        self,
        context: Optional[RunContext] = None,
        workers: Optional[int] = None,
        cache: Union[ProfileCache, bool, None] = True,
        raise_on_error: bool = True,
    ):
        self.context = context or RunContext()
        self.workers = default_workers() if workers is None else max(1, int(workers))
        if cache is True:
            self.cache: Optional[ProfileCache] = ProfileCache() if cache_enabled() else None
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.raise_on_error = raise_on_error

    def tasks(self, apps: Optional[Sequence[str]] = None) -> List[Tuple[str, str]]:
        """The (app, dataset) grid in deterministic registry order."""
        names = list(apps) if apps is not None else list(registry.app_order())
        grid: List[Tuple[str, str]] = []
        for name in names:
            spec = registry.get_spec(name)
            grid.extend((name, dataset) for dataset in spec.datasets)
        return grid

    def run(self, apps: Optional[Sequence[str]] = None) -> RunReport:
        """Evaluate the grid and return per-task results in grid order."""
        started = time.perf_counter()
        grid = self.tasks(apps)
        results: Dict[Tuple[str, str], TaskResult] = {}

        pending: List[Tuple[str, str]] = []
        for app, dataset in grid:
            cached = self._load_cached(app, dataset)
            if cached is not None:
                results[(app, dataset)] = TaskResult(
                    app=app, dataset=dataset, status=STATUS_CACHED, profile=cached
                )
            else:
                pending.append((app, dataset))

        if pending:
            if pool_is_profitable(self.workers, len(pending)):
                self._run_parallel(pending, results)
            else:
                self._run_serial(pending, results)

        report = RunReport(
            context=self.context,
            results=[results[task] for task in grid],
            workers=self.workers,
            wall_time_s=time.perf_counter() - started,
        )
        return report

    def _key(self, app: str, dataset: str) -> str:
        context_fields = registry.get_spec(app).context_fields
        return self.cache.key(app, dataset, self.context, context_fields=context_fields)

    def _load_cached(self, app: str, dataset: str) -> Optional[WorkloadProfile]:
        if self.cache is None:
            return None
        return self.cache.load(self._key(app, dataset))

    def _record(
        self,
        app: str,
        dataset: str,
        outcome: Tuple[str, object, float],
        results: Dict[Tuple[str, str], TaskResult],
    ) -> None:
        """Turn one task outcome into a TaskResult (raising if configured)."""
        tag, payload, duration = outcome
        if tag == STATUS_ERROR:
            exc, tb_text = payload
            if self.raise_on_error:
                if exc.__traceback__ is None:
                    # The exception crossed a process boundary; chain the
                    # worker-side traceback so the failure site is visible.
                    exc.__cause__ = _RemoteTraceback(tb_text)
                raise exc
            summary = traceback.format_exception_only(type(exc), exc)[-1].strip()
            results[(app, dataset)] = TaskResult(
                app=app, dataset=dataset, status=STATUS_ERROR, duration_s=duration, error=summary
            )
            return
        profile = payload
        if self.cache is not None:
            self.cache.store(self._key(app, dataset), profile)
        results[(app, dataset)] = TaskResult(
            app=app, dataset=dataset, status=STATUS_OK, duration_s=duration, profile=profile
        )

    def _run_serial(
        self, pending: List[Tuple[str, str]], results: Dict[Tuple[str, str], TaskResult]
    ) -> None:
        for app, dataset in pending:
            self._record(app, dataset, _execute_task(app, dataset, self.context), results)

    def _run_parallel(
        self, pending: List[Tuple[str, str]], results: Dict[Tuple[str, str], TaskResult]
    ) -> None:
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                (app, dataset): pool.submit(_execute_task, app, dataset, self.context)
                for app, dataset in pending
            }
            for (app, dataset), future in futures.items():
                self._record(app, dataset, future.result(), results)
