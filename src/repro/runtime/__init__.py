"""Experiment runtime: registry, caching, parallel execution, sweeps.

This package is the layer between the applications (:mod:`repro.apps`) and
the evaluation harnesses (:mod:`repro.eval`). It owns four concerns:

* :mod:`repro.runtime.registry` -- a decorator-based :class:`AppSpec`
  registry each application module registers into, replacing hand-written
  dispatch tables;
* :mod:`repro.runtime.cache` -- a content-addressed on-disk cache for
  :class:`~repro.apps.profile.WorkloadProfile` objects keyed by
  (app, dataset, run context, code fingerprint);
* :mod:`repro.runtime.runner` -- an :class:`ExperimentRunner` that fans the
  (app x dataset) grid out over a process pool with structured per-task
  results and deterministic ordering;
* :mod:`repro.runtime.sweep` -- a declarative generator for the
  :class:`~repro.apps.timing.CapstanPlatform` variants the sensitivity
  studies cost profiles under;
* :mod:`repro.runtime.dse` -- design-space exploration: batched costing of
  whole configuration grids (including structural axes) with Pareto-frontier
  extraction over cycles and area;
* :mod:`repro.runtime.budget` -- the memory-budget planner: chunk-shape
  cost models and the ``REPRO_MEMORY_BUDGET`` seam the batch engines
  stream under;
* :mod:`repro.runtime.runstore` -- the SQLite experiment store recording
  every bench run (schema in ``schema.sql``, ``REPRO_RUN_DB`` seam); the
  regression analytics in :mod:`repro.eval.regression` read it.
"""

from .budget import (
    ENV_MEMORY_BUDGET,
    ChunkPlan,
    costing_chunk_platforms,
    iter_chunked,
    parse_memory_budget,
    plan_chunks,
    resolve_memory_budget,
    variant_state_bytes,
)
from .registry import (
    AppSpec,
    RegistryError,
    RunContext,
    app_datasets,
    app_order,
    execute,
    get_spec,
    register_app,
    registered_specs,
)
from .cache import (
    ProfileCache,
    ThroughputStore,
    code_fingerprint,
    profile_from_dict,
    profile_to_dict,
)
from .dse import DSEResult, explore, pareto_frontier, prefill_throughputs
from .runner import ExperimentRunner, RunReport, TaskResult
from .runstore import BaselineRecord, RunRecord, RunStore, default_run_db
from .sweep import sweep

__all__ = [
    "ENV_MEMORY_BUDGET",
    "ChunkPlan",
    "DSEResult",
    "ThroughputStore",
    "costing_chunk_platforms",
    "iter_chunked",
    "parse_memory_budget",
    "plan_chunks",
    "resolve_memory_budget",
    "variant_state_bytes",
    "explore",
    "pareto_frontier",
    "prefill_throughputs",
    "AppSpec",
    "RegistryError",
    "RunContext",
    "app_datasets",
    "app_order",
    "execute",
    "get_spec",
    "register_app",
    "registered_specs",
    "ProfileCache",
    "code_fingerprint",
    "profile_to_dict",
    "profile_from_dict",
    "ExperimentRunner",
    "RunReport",
    "TaskResult",
    "BaselineRecord",
    "RunRecord",
    "RunStore",
    "default_run_db",
    "sweep",
]
