"""Plasticine baseline timing model (Section 5, "Plasticine & Spatial").

Plasticine is the dense RDA Capstan extends. It shares the grid, clock,
vector lanes, and DRAM system, but:

* memories are *statically banked*: a random sparse access pattern gets one
  access per cycle per memory (15 of the 16 banks idle);
* there is no read-modify-write support: a consistent random update must
  serialize read -> modify -> write with a multi-cycle dependence bubble;
* there is no sparse-iteration (scanner) hardware, so sparse loop headers
  execute one comparison/dequeue decision per cycle (scalar);
* several Capstan applications (cross-tile sparse updates, sparse DRAM
  updates, sparse iteration) cannot be mapped efficiently at all; the
  evaluation only reports Plasticine numbers for the applications the paper
  maps (CSR/COO/CSC SpMV, PR-Pull, BiCGStab).

The model re-costs a :class:`~repro.apps.profile.WorkloadProfile` under
those constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..config import MemoryTechnology, PlasticineConfig
from ..apps.profile import WorkloadProfile
from ..sim.dram import DRAMModel, TrafficSummary
from ..sim.sram import StaticBankTiming
from ..sim.stats import RunMetrics

#: Applications the paper maps to Plasticine (Table 12's Plasticine row).
PLASTICINE_MAPPABLE_APPS = {
    "spmv-csr",
    "spmv-coo",
    "spmv-csc",
    "pagerank-pull",
    "bicgstab",
}


@dataclass(frozen=True)
class PlasticinePlatform:
    """One Plasticine configuration to cost workloads on."""

    config: PlasticineConfig = field(default_factory=PlasticineConfig)
    name: str = "plasticine-hbm2e"

    def with_memory(self, memory: MemoryTechnology) -> "PlasticinePlatform":
        """A copy with a different off-chip memory technology."""
        return PlasticinePlatform(
            config=PlasticineConfig(memory=memory), name=f"plasticine-{memory.value}"
        )


def is_mappable(profile: WorkloadProfile) -> bool:
    """Whether the paper maps this application to Plasticine at all."""
    return profile.app in PLASTICINE_MAPPABLE_APPS


def estimate_cycles(
    profile: WorkloadProfile, platform: Optional[PlasticinePlatform] = None
) -> float:
    """Estimate Plasticine cycles for a workload profile.

    Sparse-iteration apps that the paper does not map raise ``ValueError``
    so callers cannot silently compare against a meaningless number.
    """
    platform = platform or PlasticinePlatform()
    if not is_mappable(profile):
        raise ValueError(
            f"{profile.app} cannot be mapped efficiently to Plasticine "
            "(no sparse iteration / RMW support)"
        )
    config = platform.config
    lanes = config.lanes
    units = max(1, min(config.compute_units, profile.outer_parallelism))
    timing = StaticBankTiming()

    # Dense compute is identical to Capstan: same lanes, same clock.
    active = profile.compute_iterations / (lanes * units)
    vector_slots = profile.vector_slots / units
    compute_cycles = max(active, vector_slots)

    # Sparse loop headers execute scalar comparisons: one element per cycle.
    scan_cycles = profile.scan_elements / units

    # Statically banked memories: one random access per memory per cycle,
    # and RMW updates pay the read-modify-write dependence bubble.
    sram_cycles = (
        timing.random_read_cycles(profile.sram_random_reads)
        + timing.random_rmw_cycles(profile.sram_random_updates)
    ) / units

    # DRAM traffic: same streaming volume; random DRAM updates must be
    # emulated with read-then-write bursts and full serialization.
    dram = DRAMModel(config.memory, clock_ghz=config.clock_ghz)
    traffic = TrafficSummary(
        streaming_read_bytes=profile.dram_stream_read_bytes,
        streaming_write_bytes=profile.dram_stream_write_bytes,
        random_accesses=profile.dram_random_reads + 4 * profile.dram_random_updates,
    )
    dram_cycles = dram.traffic_cycles(traffic)

    # Imbalance and un-pipelined rounds behave as on Capstan.
    imbalance = compute_cycles * profile.imbalance_fraction
    load_store = profile.total_stream_bytes / 4.0 / (lanes * units)

    return (
        compute_cycles
        + scan_cycles
        + sram_cycles
        + max(dram_cycles, load_store)
        + imbalance
    )


def run_metrics(
    profile: WorkloadProfile, platform: Optional[PlasticinePlatform] = None
) -> RunMetrics:
    """Wrap the cycle estimate in a :class:`RunMetrics` record."""
    platform = platform or PlasticinePlatform()
    cycles = estimate_cycles(profile, platform)
    return RunMetrics(
        app=profile.app,
        dataset=profile.dataset,
        platform=platform.name,
        cycles=cycles,
        clock_ghz=platform.config.clock_ghz,
    )
