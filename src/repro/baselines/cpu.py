"""Multi-core CPU baseline (TACO / GraphIt on a 4-socket Xeon E7-8890 v3).

The paper's CPU baseline runs TACO-generated sparse kernels and GraphIt
graph kernels with 128 threads on four Xeon E7-8890 v3 sockets. Without
that machine, this module provides:

* functional reference kernels built on ``scipy`` / ``numpy`` (used to
  validate the Capstan implementations), and
* an analytic timing model of the four-socket system: aggregate DRAM
  bandwidth, per-core issue throughput, synchronization overhead per
  parallel region, and reduced efficiency for irregular (random) accesses.

The model is calibrated so the *shape* of Table 12's CPU row reproduces:
bandwidth-bound kernels (SpMV, PageRank) land tens of times slower than
Capstan-HBM2E, latency/atomic-heavy kernels (COO, M+M) land hundreds of
times slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..apps.profile import WorkloadProfile
from ..formats.convert import to_scipy_csr
from ..sim.stats import RunMetrics


@dataclass(frozen=True)
class CPUPlatform:
    """Analytic model of the paper's four-socket Xeon baseline.

    Attributes:
        cores: Physical cores across all sockets (4 x 18 = 72; the paper
            runs 128 threads with SMT, which we fold into efficiency).
        clock_ghz: Sustained all-core clock.
        dram_bandwidth_gbps: Aggregate four-socket DRAM bandwidth.
        flops_per_cycle_per_core: Sustained sparse-kernel operations per
            cycle per core (sparse codes are nowhere near peak AVX).
        random_access_penalty: Effective cycles per random (cache-missing)
            memory access.
        atomic_penalty: Effective cycles per contended atomic update.
        sync_overhead_cycles: Cycles per parallel-region barrier
            (kernel-launch / OpenMP overhead); multiplied by the number of
            sequential rounds.
    """

    cores: int = 72
    clock_ghz: float = 2.5
    dram_bandwidth_gbps: float = 272.0
    flops_per_cycle_per_core: float = 0.5
    random_access_penalty: float = 40.0
    atomic_penalty: float = 120.0
    sync_overhead_cycles: float = 40_000.0
    name: str = "cpu-xeon-e7-8890v3"


def estimate_cycles(profile: WorkloadProfile, platform: Optional[CPUPlatform] = None) -> float:
    """Estimate CPU cycles (at the CPU clock) for a workload profile."""
    platform = platform or CPUPlatform()
    cores = platform.cores

    compute = profile.compute_iterations / (platform.flops_per_cycle_per_core * cores)
    random_accesses = profile.sram_random_accesses + profile.dram_random_reads
    random = random_accesses * platform.random_access_penalty / cores
    atomics = (
        (profile.sram_random_updates + profile.dram_random_updates)
        * platform.atomic_penalty
        / cores
    )
    bytes_total = profile.total_stream_bytes + 64.0 * profile.dram_random_accesses
    bytes_per_cycle = platform.dram_bandwidth_gbps / platform.clock_ghz
    bandwidth = bytes_total / bytes_per_cycle
    sync = profile.sequential_rounds * platform.sync_overhead_cycles
    # Un-fused kernels (the BiCGStab comparison) also pay per-kernel
    # bandwidth: intermediate vectors bounce through DRAM between kernels.
    return max(compute + random + atomics, bandwidth) + sync


def run_metrics(profile: WorkloadProfile, platform: Optional[CPUPlatform] = None) -> RunMetrics:
    """Wrap the CPU cycle estimate in a :class:`RunMetrics` record."""
    platform = platform or CPUPlatform()
    cycles = estimate_cycles(profile, platform)
    return RunMetrics(
        app=profile.app,
        dataset=profile.dataset,
        platform=platform.name,
        cycles=cycles,
        clock_ghz=platform.clock_ghz,
    )


# --------------------------------------------------------------------------- #
# Functional reference kernels (the TACO / GraphIt substitutes)
# --------------------------------------------------------------------------- #


def reference_spmv_csr(matrix, vector: np.ndarray) -> np.ndarray:
    """scipy CSR SpMV, the TACO-equivalent reference."""
    return to_scipy_csr(matrix) @ np.asarray(vector, dtype=np.float64)


def reference_spmspm(matrix_a, matrix_b) -> np.ndarray:
    """scipy sparse-sparse matrix product reference."""
    return np.asarray((to_scipy_csr(matrix_a) @ to_scipy_csr(matrix_b)).todense())


def reference_bicgstab(matrix, rhs: np.ndarray, tolerance: float = 1e-8):
    """scipy BiCGStab reference returning (solution, info)."""
    from scipy.sparse.linalg import bicgstab as scipy_bicgstab

    a = to_scipy_csr(matrix)
    try:
        return scipy_bicgstab(a, rhs, rtol=tolerance)
    except TypeError:  # older scipy uses `tol`
        return scipy_bicgstab(a, rhs, tol=tolerance)
