"""Bespoke-accelerator comparison models (Table 13).

The paper compares Capstan against published numbers and idealized models
of four ASICs, exactly as we do here:

* **EIE** (CSC SpMV on compressed DNN weights): stores the whole model
  on-chip and uses many scalar processing elements, so it beats Capstan
  (0.53x at 1.6 GHz) because Capstan must stream the matrix from HBM.
* **SCNN** (sparse CNN): a 2-D multiplier array processing 4 activations x
  4 weights per PE per cycle; layers with few activations leave most of the
  array idle.
* **Graphicionado** (graph analytics with 64 MiB eDRAM): published
  edge-processing rates on flickr/fb-class graphs; both it and Capstan are
  DRAM-bound.
* **MatRaptor** (row-product SpMSpM): eight scalar pipelines, peak
  ~10 GOP/s; Capstan's 16-wide intersections give it a large advantage.

Each model converts an application profile (or published rate) into an
equivalent runtime so the Table 13 harness can report the speedup ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apps.profile import WorkloadProfile


@dataclass(frozen=True)
class ASICModel:
    """A published-rate ASIC baseline.

    Attributes:
        name: Accelerator name.
        clock_ghz: Published clock frequency.
        reference_area_mm2: Published area (for the Table 13 notes).
        reference_node_nm: Process node of the published area.
    """

    name: str
    clock_ghz: float
    reference_area_mm2: float
    reference_node_nm: int


EIE = ASICModel(name="eie", clock_ghz=0.8, reference_area_mm2=64.0, reference_node_nm=28)
SCNN = ASICModel(name="scnn", clock_ghz=1.0, reference_area_mm2=7.9, reference_node_nm=16)
GRAPHICIONADO = ASICModel(
    name="graphicionado", clock_ghz=1.0, reference_area_mm2=0.0, reference_node_nm=28
)
MATRAPTOR = ASICModel(
    name="matraptor", clock_ghz=2.0, reference_area_mm2=2.26, reference_node_nm=28
)


def eie_runtime_seconds(profile: WorkloadProfile, model: Optional[ASICModel] = None) -> float:
    """EIE runtime for a CSC SpMV profile.

    EIE keeps the compressed matrix in on-chip SRAM across 64 scalar PEs,
    each retiring one multiply-accumulate per cycle with negligible memory
    stalls; its advantage is the absence of DRAM traffic for matrix data.
    """
    model = model or EIE
    pes = 256  # the 64 mm^2 EIE configuration the paper cites
    macs = profile.compute_iterations
    cycles = macs / pes
    # Leading-non-zero detection keeps the PEs fed; a small fixed pipeline
    # fill is paid per input column.
    cycles += profile.extra.get("input_nnz", 0.0) * 0.25
    return cycles / (model.clock_ghz * 1e9)


def scnn_runtime_seconds(profile: WorkloadProfile, model: Optional[ASICModel] = None) -> float:
    """SCNN runtime for a sparse convolution profile.

    SCNN's 64 PEs each multiply 4 activations by 4 weights per cycle, but a
    layer with few activations (or few weights) cannot fill the 4x4
    Cartesian product, and output tiling forces multiple passes over the
    weights for large layers.
    """
    model = model or SCNN
    pes = 64
    macs = profile.compute_iterations
    activation_nnz = max(profile.extra.get("activation_nnz", macs), 1.0)
    weights_per_activation = macs / activation_nnz
    # Utilization of the 4x4 multiplier array per PE.
    act_side = min(4.0, max(1.0, activation_nnz / pes))
    weight_side = min(4.0, max(1.0, weights_per_activation))
    utilization = (act_side / 4.0) * (weight_side / 4.0)
    effective_macs_per_cycle = pes * 16.0 * utilization
    cycles = macs / max(effective_macs_per_cycle, 1.0)
    # Output tiling overhead: accumulator banks cover a limited output
    # halo, so wide layers pay an extra pass.
    cycles *= 1.15
    return cycles / (model.clock_ghz * 1e9)


def graphicionado_runtime_seconds(
    profile: WorkloadProfile,
    edges_per_second: float = 2.0e9,
    model: Optional[ASICModel] = None,
) -> float:
    """Graphicionado runtime from its published edge-processing rate.

    The paper compares against published rates on flickr/fb; the default
    2 GTEPS is representative of its BFS/PR/SSSP numbers with eDRAM.
    """
    model = model or GRAPHICIONADO
    edges = profile.extra.get("edges_traversed", None)
    if edges is None:
        edges = profile.extra.get("relaxations", None)
    if edges is None:
        edges = profile.extra.get("edges", profile.compute_iterations)
    rounds = max(1.0, float(profile.sequential_rounds))
    # Per-iteration pipeline drain adds a fixed overhead per round.
    return edges / edges_per_second + rounds * 1e-6


def matraptor_runtime_seconds(profile: WorkloadProfile, model: Optional[ASICModel] = None) -> float:
    """MatRaptor runtime for an SpMSpM profile at its peak demonstrated rate.

    MatRaptor's eight scalar pipelines deliver at most 10 GOP/s (counting a
    multiply and an add as two operations), which the paper uses as the
    comparison point.
    """
    model = model or MATRAPTOR
    operations = 2.0 * profile.compute_iterations
    peak_ops_per_second = 10.0e9
    return operations / peak_ops_per_second
