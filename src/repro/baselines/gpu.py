"""Nvidia V100 GPU baseline (cuSPARSE / Gunrock).

The paper's GPU baseline runs cuSPARSE for sparse linear algebra and
Gunrock for graph kernels on a V100 (900 GB/s HBM2, 80 SMs at ~1.4 GHz).
This analytic roofline model captures the effects the comparison depends
on:

* sparse kernels on GPUs are memory-bandwidth bound, so streaming traffic
  divides by the 900 GB/s HBM2 bandwidth;
* irregular gathers/scatters achieve a fraction of that bandwidth because
  each 4 B element drags a 32 B sector through the memory system;
* atomics to hot addresses serialize at the L2;
* un-fused kernel sequences (BiCGStab, per-level graph frontiers) pay a
  kernel-launch latency per round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apps.profile import WorkloadProfile
from ..sim.stats import RunMetrics


@dataclass(frozen=True)
class GPUPlatform:
    """Analytic V100 model.

    Attributes:
        sms: Streaming multiprocessors.
        clock_ghz: Sustained SM clock.
        dram_bandwidth_gbps: HBM2 bandwidth.
        flops_per_cycle_per_sm: Sustained sparse-kernel operations per cycle
            per SM (far below the dense peak).
        sector_bytes: Bytes moved per random element access (L2 sector).
        atomic_throughput_per_cycle: Atomic updates the L2 can retire per
            cycle under moderate contention.
        kernel_launch_cycles: Cycles of launch + sync overhead per
            sequential round (at the SM clock).
    """

    sms: int = 80
    clock_ghz: float = 1.4
    dram_bandwidth_gbps: float = 900.0
    flops_per_cycle_per_sm: float = 8.0
    sector_bytes: float = 48.0
    atomic_throughput_per_cycle: float = 8.0
    kernel_launch_cycles: float = 15_000.0
    name: str = "gpu-v100"


def estimate_cycles(profile: WorkloadProfile, platform: Optional[GPUPlatform] = None) -> float:
    """Estimate V100 cycles (at the GPU clock) for a workload profile."""
    platform = platform or GPUPlatform()
    bytes_per_cycle = platform.dram_bandwidth_gbps / platform.clock_ghz

    compute = profile.compute_iterations / (platform.flops_per_cycle_per_sm * platform.sms)
    streaming = profile.total_stream_bytes / bytes_per_cycle
    # Random element accesses: on-chip data on Capstan is DRAM-resident and
    # cache-resident (at best) on the GPU; charge a sector per access at a
    # derated random-access bandwidth.
    random_accesses = profile.sram_random_accesses + profile.dram_random_accesses
    random = random_accesses * platform.sector_bytes / (bytes_per_cycle * 0.6)
    atomics = (
        profile.sram_random_updates + profile.dram_random_updates
    ) / platform.atomic_throughput_per_cycle
    launches = profile.sequential_rounds * platform.kernel_launch_cycles
    return max(compute, streaming) + random + atomics + launches


def run_metrics(profile: WorkloadProfile, platform: Optional[GPUPlatform] = None) -> RunMetrics:
    """Wrap the GPU cycle estimate in a :class:`RunMetrics` record."""
    platform = platform or GPUPlatform()
    cycles = estimate_cycles(profile, platform)
    return RunMetrics(
        app=profile.app,
        dataset=profile.dataset,
        platform=platform.name,
        cycles=cycles,
        clock_ghz=platform.clock_ghz,
    )
