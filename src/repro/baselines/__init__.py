"""Baseline platform models: Plasticine, CPU (TACO/GraphIt), GPU (V100), ASICs."""

from . import asic, cpu, gpu, plasticine
from .asic import (
    EIE,
    GRAPHICIONADO,
    MATRAPTOR,
    SCNN,
    ASICModel,
    eie_runtime_seconds,
    graphicionado_runtime_seconds,
    matraptor_runtime_seconds,
    scnn_runtime_seconds,
)
from .cpu import CPUPlatform
from .gpu import GPUPlatform
from .plasticine import PLASTICINE_MAPPABLE_APPS, PlasticinePlatform

__all__ = [
    "asic",
    "cpu",
    "gpu",
    "plasticine",
    "ASICModel",
    "EIE",
    "SCNN",
    "GRAPHICIONADO",
    "MATRAPTOR",
    "eie_runtime_seconds",
    "scnn_runtime_seconds",
    "graphicionado_runtime_seconds",
    "matraptor_runtime_seconds",
    "CPUPlatform",
    "GPUPlatform",
    "PlasticinePlatform",
    "PLASTICINE_MAPPABLE_APPS",
]
