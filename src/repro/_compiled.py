"""Optional compiled-kernel backend: the numba seam and the backend lattice.

The engines expose three backend tiers (the "backend lattice"):

* ``"reference"`` -- the object-at-a-time simulators; ground truth.
* ``"numpy"`` -- the batched array engines; the default everywhere.
* ``"numba"`` -- optional JIT compilation of the hottest scalar loops (the
  per-cycle SpMU scheduling kernel and the packed-word bitset kernels).

numba is an *optional* dependency (``pip install .[numba]``). This module
is the single import guard: when numba is absent, :func:`njit` is an
identity decorator -- the kernels still run as plain Python, which is what
the equivalence tests exercise -- and requesting ``backend="numba"`` falls
back to the numpy engines with a one-time warning instead of failing.

Nothing here may import from the rest of the package (the core engines
import this module), so it stays stdlib-only.
"""

from __future__ import annotations

import warnings
from typing import Optional, Set

try:  # pragma: no cover - exercised only when numba is installed
    import numba as _numba

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - the default CI environment
    _numba = None
    HAS_NUMBA = False

#: Backend names accepted by the array engines' ``backend=`` seam.
COMPILED_BACKENDS = ("numpy", "numba")


def njit(func=None, **options):
    """``numba.njit`` when numba is installed, identity otherwise.

    Usable both bare (``@njit``) and with options (``@njit(cache=True)``);
    options are dropped in the fallback so decorated kernels remain plain
    Python functions that the equivalence tests can call directly.
    """
    if func is None:
        return lambda f: njit(f, **options)
    if HAS_NUMBA:  # pragma: no cover - exercised only when numba is installed
        options.setdefault("cache", True)
        return _numba.njit(**options)(func)
    return func


_DEFAULT_BACKEND = "numpy"
_WARNED_FALLBACKS: Set[str] = set()


def default_backend() -> str:
    """The process-wide default compiled backend (``numpy`` or ``numba``)."""
    return _DEFAULT_BACKEND


def set_default_backend(backend: str) -> None:
    """Set the process-wide default backend (``repro-eval --backend numba``).

    Requesting ``numba`` without numba installed is allowed; every engine
    then falls back to numpy with a one-time warning at use time.
    """
    from .errors import ConfigurationError

    if backend not in COMPILED_BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {COMPILED_BACKENDS}"
        )
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = backend


def resolve_backend(backend: Optional[str], feature: str = "kernels") -> str:
    """Resolve a ``backend=`` argument to a usable engine tier.

    Args:
        backend: ``None`` (use the process default), ``"numpy"`` (also
            accepts the legacy alias ``"array"``), or ``"numba"``.
        feature: Label for the one-time fallback warning.

    Returns:
        ``"numba"`` when requested and available, else ``"numpy"``.
    """
    from .errors import ConfigurationError

    if backend is None:
        backend = _DEFAULT_BACKEND
    if backend in ("array", "vectorized"):
        backend = "numpy"
    if backend not in COMPILED_BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {COMPILED_BACKENDS}"
        )
    if backend == "numba" and not HAS_NUMBA:
        if feature not in _WARNED_FALLBACKS:
            _WARNED_FALLBACKS.add(feature)
            warnings.warn(
                f"backend 'numba' requested for {feature} but numba is not "
                "installed; falling back to the numpy engine "
                "(pip install repro-capstan[numba])",
                RuntimeWarning,
                stacklevel=3,
            )
        return "numpy"
    return backend
