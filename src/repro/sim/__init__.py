"""Simulation substrate: DRAM, SRAM, network models, queues, and stall stats."""

from .dram import BURST_BYTES, DRAMModel, TrafficSummary
from .network import NetworkConfig, OnChipNetwork, cross_tile_traffic_cycles
from .queues import BoundedFIFO, CreditLink, stream_through
from .sram import BankedScratchpad, StaticBankTiming
from .stats import STALL_CATEGORIES, RunMetrics, StallBreakdown, geometric_mean

__all__ = [
    "BURST_BYTES",
    "DRAMModel",
    "TrafficSummary",
    "NetworkConfig",
    "OnChipNetwork",
    "cross_tile_traffic_cycles",
    "BoundedFIFO",
    "CreditLink",
    "stream_through",
    "BankedScratchpad",
    "StaticBankTiming",
    "STALL_CATEGORIES",
    "RunMetrics",
    "StallBreakdown",
    "geometric_mean",
]
