"""Off-chip DRAM timing model (the Ramulator substitute).

The paper uses Ramulator behind 80 address generators; the applications it
studies are dominated by bandwidth, not detailed bank timing, so this model
captures the first-order effects:

* peak bandwidth and latency per technology (DDR4-2133, HBM2, HBM2E, ideal);
* burst (64 B) granularity -- a random 4 B access still moves a whole burst;
* reduced efficiency for random versus streaming traffic (row-buffer
  locality), calibrated so random-access bandwidth lands near the commonly
  measured ~60% (HBM) / ~40% (DDR4) of peak;
* read-modify-write traffic counting both the read and the write-back; and
* optional read-side compression (Section 3.4), which shrinks the bytes
  moved for compressible pointer streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import MEMORY_BANDWIDTH_GBPS, MEMORY_LATENCY_NS, MemoryTechnology
from ..errors import SimulationError

#: DRAM burst size in bytes (Section 4.1: AGs send burst-level 64 B requests).
BURST_BYTES = 64

#: Fraction of peak bandwidth achievable by purely random burst traffic.
RANDOM_ACCESS_EFFICIENCY = {
    MemoryTechnology.DDR4: 0.40,
    MemoryTechnology.HBM2: 0.60,
    MemoryTechnology.HBM2E: 0.60,
    MemoryTechnology.IDEAL: 1.0,
}

#: Fraction of peak bandwidth achievable by streaming (sequential) traffic.
STREAM_ACCESS_EFFICIENCY = {
    MemoryTechnology.DDR4: 0.85,
    MemoryTechnology.HBM2: 0.90,
    MemoryTechnology.HBM2E: 0.90,
    MemoryTechnology.IDEAL: 1.0,
}


@dataclass(frozen=True)
class TrafficSummary:
    """Bytes an application moves to and from DRAM, split by access pattern.

    Attributes:
        streaming_read_bytes: Sequentially read bytes (tile loads, pointer
            streams).
        streaming_write_bytes: Sequentially written bytes (result stores).
        random_read_bytes: Randomly read bytes, already inflated to burst
            granularity by the caller or counted per element.
        random_write_bytes: Randomly written bytes (atomic update
            write-backs).
        random_accesses: Number of individual random element accesses (used
            for burst-granularity inflation when byte counts are per
            element).
    """

    streaming_read_bytes: float = 0.0
    streaming_write_bytes: float = 0.0
    random_read_bytes: float = 0.0
    random_write_bytes: float = 0.0
    random_accesses: int = 0

    @property
    def total_bytes(self) -> float:
        """Total bytes moved, before efficiency derating."""
        return (
            self.streaming_read_bytes
            + self.streaming_write_bytes
            + self.random_read_bytes
            + self.random_write_bytes
        )

    def scaled(self, factor: float) -> "TrafficSummary":
        """Return the same traffic scaled by ``factor`` (e.g. compression)."""
        return TrafficSummary(
            streaming_read_bytes=self.streaming_read_bytes * factor,
            streaming_write_bytes=self.streaming_write_bytes * factor,
            random_read_bytes=self.random_read_bytes * factor,
            random_write_bytes=self.random_write_bytes * factor,
            random_accesses=self.random_accesses,
        )


class DRAMModel:
    """Bandwidth/latency model of one memory technology.

    Args:
        technology: Which off-chip memory to model.
        bandwidth_gbps: Override the peak bandwidth (used by the Figure 5a
            bandwidth sweep); defaults to the technology's peak.
        clock_ghz: Accelerator clock used to convert time into cycles.
    """

    def __init__(
        self,
        technology: MemoryTechnology = MemoryTechnology.HBM2E,
        bandwidth_gbps: Optional[float] = None,
        clock_ghz: float = 1.6,
    ):
        if clock_ghz <= 0:
            raise SimulationError("clock_ghz must be positive")
        self._technology = technology
        self._peak_gbps = (
            bandwidth_gbps if bandwidth_gbps is not None else MEMORY_BANDWIDTH_GBPS[technology]
        )
        if self._peak_gbps <= 0:
            raise SimulationError("bandwidth must be positive")
        self._latency_ns = MEMORY_LATENCY_NS[technology]
        self._clock_ghz = clock_ghz

    @property
    def technology(self) -> MemoryTechnology:
        """The modelled memory technology."""
        return self._technology

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak bandwidth in GB/s."""
        return self._peak_gbps

    @property
    def latency_cycles(self) -> int:
        """Closed-page access latency in accelerator cycles."""
        return int(round(self._latency_ns * self._clock_ghz))

    @property
    def bytes_per_cycle_peak(self) -> float:
        """Peak bytes transferred per accelerator cycle."""
        if self._peak_gbps == float("inf"):
            return float("inf")
        return self._peak_gbps / self._clock_ghz

    def streaming_cycles(self, data_bytes: float) -> float:
        """Cycles to stream ``data_bytes`` sequentially."""
        if data_bytes < 0:
            raise SimulationError("bytes must be non-negative")
        peak = self.bytes_per_cycle_peak
        if peak == float("inf"):
            return 0.0
        efficiency = STREAM_ACCESS_EFFICIENCY[self._technology]
        return data_bytes / (peak * efficiency)

    def random_cycles(self, accesses: int, bytes_per_access: int = 4) -> float:
        """Cycles for ``accesses`` random element accesses.

        Each random access moves a whole 64 B burst regardless of the
        element size, and achieves only the random-access efficiency of the
        technology. A read-modify-write access should be counted as two
        accesses (read burst + write-back burst) by the caller, or via
        :meth:`rmw_cycles`.
        """
        if accesses < 0:
            raise SimulationError("accesses must be non-negative")
        peak = self.bytes_per_cycle_peak
        if peak == float("inf"):
            return 0.0
        efficiency = RANDOM_ACCESS_EFFICIENCY[self._technology]
        bursts = accesses  # one burst per access (worst case, no coalescing)
        return bursts * BURST_BYTES / (peak * efficiency)

    def random_cycles_from_bursts(self, bursts: int) -> float:
        """Cycles for a known number of random bursts (post-coalescing)."""
        if bursts < 0:
            raise SimulationError("bursts must be non-negative")
        peak = self.bytes_per_cycle_peak
        if peak == float("inf"):
            return 0.0
        efficiency = RANDOM_ACCESS_EFFICIENCY[self._technology]
        return bursts * BURST_BYTES / (peak * efficiency)

    def rmw_cycles(self, updates: int) -> float:
        """Cycles for ``updates`` random read-modify-write element updates."""
        return self.random_cycles(2 * updates)

    def traffic_cycles(self, traffic: TrafficSummary) -> float:
        """Cycles to move a whole :class:`TrafficSummary`.

        Streaming and random components share the same channel, so their
        cycle costs add.
        """
        streaming = self.streaming_cycles(
            traffic.streaming_read_bytes + traffic.streaming_write_bytes
        )
        random_bytes = traffic.random_read_bytes + traffic.random_write_bytes
        if traffic.random_accesses:
            random = self.random_cycles(traffic.random_accesses)
        else:
            peak = self.bytes_per_cycle_peak
            if peak == float("inf"):
                random = 0.0
            else:
                efficiency = RANDOM_ACCESS_EFFICIENCY[self._technology]
                random = random_bytes / (peak * efficiency)
        return streaming + random

    def with_bandwidth(self, bandwidth_gbps: float) -> "DRAMModel":
        """A copy of this model with a different peak bandwidth."""
        return DRAMModel(self._technology, bandwidth_gbps, self._clock_ghz)
