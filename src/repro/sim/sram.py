"""Statically banked on-chip SRAM model (the Plasticine memory baseline).

Plasticine's memories are statically banked: the compiler guarantees that no
two lanes access the same bank in a cycle, which works for affine dense
access patterns but collapses to one access per cycle for random sparse
accesses (Section 5, "Plasticine & Spatial"). There is also no
read-modify-write support, so a consistent random update must serialize the
read, the modify, and the write with multi-cycle bubbles.

This module provides that baseline memory model plus a simple functional
banked scratchpad shared by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class StaticBankTiming:
    """Cycle costs of the statically banked baseline memory.

    Attributes:
        rmw_bubble_cycles: Pipeline bubble between the read and write of a
            dependent read-modify-write sequence.
    """

    rmw_bubble_cycles: int = 4

    def dense_access_cycles(self, vectors: int) -> int:
        """Dense, statically banked accesses: one vector per cycle."""
        if vectors < 0:
            raise SimulationError("vectors must be non-negative")
        return vectors

    def random_read_cycles(self, accesses: int) -> int:
        """Random reads: one access per cycle (15 of 16 banks idle)."""
        if accesses < 0:
            raise SimulationError("accesses must be non-negative")
        return accesses

    def random_rmw_cycles(self, updates: int) -> int:
        """Random read-modify-writes: serialized with a dependence bubble."""
        if updates < 0:
            raise SimulationError("updates must be non-negative")
        return updates * (1 + self.rmw_bubble_cycles)


class BankedScratchpad:
    """A functional banked scratchpad with per-cycle conflict accounting.

    Unlike the SpMU this scratchpad does not reorder: a vector of accesses
    costs as many cycles as its most-contended bank (arbitrated behaviour).
    It is used by tests and by the Plasticine baseline model.
    """

    def __init__(self, banks: int = 16, words_per_bank: int = 4096):
        if banks <= 0 or words_per_bank <= 0:
            raise SimulationError("banks and words_per_bank must be positive")
        self._banks = banks
        self._words_per_bank = words_per_bank
        self._data = np.zeros(banks * words_per_bank, dtype=np.float64)
        self._access_cycles = 0
        self._accesses = 0

    @property
    def banks(self) -> int:
        """Number of banks."""
        return self._banks

    @property
    def capacity_words(self) -> int:
        """Total words of storage."""
        return self._data.size

    @property
    def access_cycles(self) -> int:
        """Cycles consumed by accesses so far."""
        return self._access_cycles

    @property
    def accesses(self) -> int:
        """Individual word accesses performed so far."""
        return self._accesses

    def load(self, base: int, values: np.ndarray) -> None:
        """Initialise contents without consuming cycles."""
        values = np.asarray(values, dtype=np.float64)
        if base < 0 or base + values.size > self._data.size:
            raise SimulationError("load outside scratchpad capacity")
        self._data[base : base + values.size] = values

    def read(self, addresses: Sequence[int]) -> np.ndarray:
        """Read a vector of addresses, serializing on bank conflicts."""
        self._account(addresses)
        return np.asarray([self._data[self._check(a)] for a in addresses], dtype=np.float64)

    def write(self, addresses: Sequence[int], values: Iterable[float]) -> None:
        """Write a vector of addresses, serializing on bank conflicts."""
        self._account(addresses)
        for address, value in zip(addresses, values):
            self._data[self._check(address)] = float(value)

    def accumulate(self, addresses: Sequence[int], values: Iterable[float]) -> None:
        """Read-modify-write accumulate, serializing on bank conflicts."""
        self._account(addresses)
        for address, value in zip(addresses, values):
            index = self._check(address)
            self._data[index] += float(value)

    def snapshot(self) -> np.ndarray:
        """A copy of the full contents."""
        return self._data.copy()

    def _check(self, address: int) -> int:
        if address < 0 or address >= self._data.size:
            raise SimulationError(f"address {address} outside scratchpad")
        return int(address)

    def _account(self, addresses: Sequence[int]) -> None:
        if not len(addresses):
            return
        counts = np.zeros(self._banks, dtype=np.int64)
        for address in addresses:
            counts[self._check(address) % self._banks] += 1
        self._access_cycles += int(counts.max())
        self._accesses += len(addresses)
