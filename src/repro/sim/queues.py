"""Bounded FIFOs and credit-based links.

Capstan's loosely timed interconnect relies on per-link buffering so that
producers and consumers do not need global synchronization; the SpMU's
reordering also depends on deep enough buffers to hide the scheduling
latency (Section 3.2 notes each additional cycle of memory latency needs
one more inverse-permutation FIFO slot). These small primitives are used by
component tests and by the shuffle/network models.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterable, List, Optional, TypeVar

from ..errors import SimulationError

T = TypeVar("T")


class BoundedFIFO(Generic[T]):
    """A bounded first-in first-out queue with occupancy statistics."""

    def __init__(self, depth: int):
        if depth <= 0:
            raise SimulationError("FIFO depth must be positive")
        self._depth = depth
        self._items: Deque[T] = deque()
        self._max_occupancy = 0
        self._pushes = 0
        self._full_rejections = 0

    @property
    def depth(self) -> int:
        """Maximum number of buffered items."""
        return self._depth

    @property
    def occupancy(self) -> int:
        """Items currently buffered."""
        return len(self._items)

    @property
    def max_occupancy(self) -> int:
        """High-water mark of buffered items."""
        return self._max_occupancy

    @property
    def full_rejections(self) -> int:
        """Number of pushes rejected because the FIFO was full."""
        return self._full_rejections

    def is_full(self) -> bool:
        """Whether the FIFO cannot accept another item."""
        return len(self._items) >= self._depth

    def is_empty(self) -> bool:
        """Whether the FIFO has no items."""
        return not self._items

    def push(self, item: T) -> bool:
        """Push an item; returns ``False`` (and counts) if the FIFO is full."""
        if self.is_full():
            self._full_rejections += 1
            return False
        self._items.append(item)
        self._pushes += 1
        self._max_occupancy = max(self._max_occupancy, len(self._items))
        return True

    def pop(self) -> T:
        """Pop the oldest item; raises if empty."""
        if not self._items:
            raise SimulationError("pop from empty FIFO")
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        """The oldest item without removing it, or ``None`` if empty."""
        return self._items[0] if self._items else None

    def drain(self) -> List[T]:
        """Remove and return every buffered item in order."""
        items = list(self._items)
        self._items.clear()
        return items


class CreditLink(Generic[T]):
    """A credit-based flow-controlled link between a producer and consumer.

    The producer may send only while it holds credits; the consumer returns
    a credit whenever it accepts an item. This mirrors the per-link
    buffering of the on-chip network.
    """

    def __init__(self, credits: int):
        if credits <= 0:
            raise SimulationError("credit count must be positive")
        self._initial_credits = credits
        self._credits = credits
        self._buffer: Deque[T] = deque()
        self._stalled_sends = 0

    @property
    def credits(self) -> int:
        """Credits currently held by the producer."""
        return self._credits

    @property
    def stalled_sends(self) -> int:
        """Send attempts rejected for lack of credits."""
        return self._stalled_sends

    @property
    def in_flight(self) -> int:
        """Items buffered in the link awaiting the consumer."""
        return len(self._buffer)

    def send(self, item: T) -> bool:
        """Producer side: send an item if a credit is available."""
        if self._credits <= 0:
            self._stalled_sends += 1
            return False
        self._credits -= 1
        self._buffer.append(item)
        return True

    def receive(self) -> Optional[T]:
        """Consumer side: accept the oldest item and return a credit."""
        if not self._buffer:
            return None
        self._credits += 1
        if self._credits > self._initial_credits:
            raise SimulationError("credit overflow: more credits returned than issued")
        return self._buffer.popleft()

    def receive_all(self) -> List[T]:
        """Accept every buffered item, returning all their credits."""
        items: List[T] = []
        while self._buffer:
            received = self.receive()
            if received is not None:
                items.append(received)
        return items


def stream_through(fifo: BoundedFIFO[T], items: Iterable[T]) -> int:
    """Push items through a FIFO, popping when full; returns pop count.

    A convenience helper for tests that emulates a consumer keeping pace
    with a producer through a bounded buffer.
    """
    pops = 0
    for item in items:
        while not fifo.push(item):
            fifo.pop()
            pops += 1
    return pops
