"""Stall accounting and cycle breakdowns (Figure 7).

The paper explains each application's efficiency by attributing every
lane-cycle to one of: useful work (Active), scanner overhead on all-zero
vectors (Scan), DRAM load/store time (Load/Store), under-filled vectors
(Vector Length), uneven tiles (Imbalance), on-chip network effects
(Network), SRAM bank conflicts (SRAM), and DRAM bandwidth/latency (DRAM).
:class:`StallBreakdown` is the shared container the application timing
models fill in and the Figure 7 harness renders.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Dict, List

#: Breakdown categories in the order Figure 7 plots them.
STALL_CATEGORIES = (
    "active",
    "scan",
    "load_store",
    "vector_length",
    "imbalance",
    "network",
    "sram",
    "dram",
)


@dataclass
class StallBreakdown:
    """Per-application cycle attribution (one Figure 7 bar).

    All values are in cycles; :meth:`fractions` normalizes them to the total
    for plotting. Categories follow the paper's synthetic-then-simulated
    methodology: the first five are computed analytically from the workload,
    and the last three are the increments observed when network, SRAM
    conflict, and DRAM models are added one at a time.
    """

    active: float = 0.0
    scan: float = 0.0
    load_store: float = 0.0
    vector_length: float = 0.0
    imbalance: float = 0.0
    network: float = 0.0
    sram: float = 0.0
    dram: float = 0.0

    @property
    def total_cycles(self) -> float:
        """Sum of all categories (the application's end-to-end cycles)."""
        return sum(getattr(self, name) for name in STALL_CATEGORIES)

    def fractions(self) -> Dict[str, float]:
        """Each category as a fraction of the total (sums to 1.0)."""
        total = self.total_cycles
        if total <= 0:
            return {name: 0.0 for name in STALL_CATEGORIES}
        return {name: getattr(self, name) / total for name in STALL_CATEGORIES}

    def as_dict(self) -> Dict[str, float]:
        """Raw cycles per category."""
        return {name: getattr(self, name) for name in STALL_CATEGORIES}

    def add(self, other: "StallBreakdown") -> "StallBreakdown":
        """Element-wise sum (e.g. across datasets or kernel phases)."""
        merged = StallBreakdown()
        for item in fields(StallBreakdown):
            setattr(merged, item.name, getattr(self, item.name) + getattr(other, item.name))
        return merged

    def scaled(self, factor: float) -> "StallBreakdown":
        """Every category multiplied by ``factor``."""
        scaled = StallBreakdown()
        for item in fields(StallBreakdown):
            setattr(scaled, item.name, getattr(self, item.name) * factor)
        return scaled

    @property
    def activity_factor(self) -> float:
        """Fraction of cycles doing useful work (the Active bar segment)."""
        total = self.total_cycles
        return self.active / total if total else 0.0


@dataclass
class RunMetrics:
    """End-to-end metrics for one application run on one platform.

    Attributes:
        app: Application name (e.g. ``"spmv-csr"``).
        dataset: Dataset name (e.g. ``"bcsstk30"``).
        platform: Platform name (e.g. ``"capstan-hbm2e"``).
        cycles: Total execution cycles on the platform's clock.
        clock_ghz: Platform clock, for converting cycles to time.
        breakdown: Optional stall breakdown (Capstan runs only).
        extra: Free-form auxiliary metrics (bytes moved, ops executed...).
    """

    app: str
    dataset: str
    platform: str
    cycles: float
    clock_ghz: float
    breakdown: StallBreakdown | None = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def runtime_seconds(self) -> float:
        """Wall-clock runtime implied by the cycle count."""
        return self.cycles / (self.clock_ghz * 1e9)

    def speedup_over(self, other: "RunMetrics") -> float:
        """This run's speedup relative to ``other`` (times faster)."""
        if self.runtime_seconds <= 0:
            return float("inf")
        return other.runtime_seconds / self.runtime_seconds


def geometric_mean(values: List[float]) -> float:
    """Geometric mean used throughout the evaluation tables."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    log_sum = sum(math.log(v) for v in filtered)
    return float(math.exp(log_sum / len(filtered)))
