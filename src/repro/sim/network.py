"""On-chip interconnection network model (Section 4.1).

Capstan's units communicate over a loosely timed hybrid static-dynamic
network with per-link buffering, providing 512-bit vector links and 32-bit
scalar links. The network model captures the effects that matter to the
applications:

* serialization when multiple producers feed one consumer link;
* hop latency between tiles (which matters for un-pipelined iterative
  algorithms such as BFS/SSSP, the "Network" stall source of Figure 7);
* the distinction between streaming (pipelined) and round-trip
  (latency-bound) communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import SimulationError

#: Bits carried per vector-link flit (512-bit links).
VECTOR_LINK_BITS = 512
#: Bits carried per scalar-link flit (32-bit links).
SCALAR_LINK_BITS = 32


@dataclass(frozen=True)
class NetworkConfig:
    """On-chip network parameters.

    Attributes:
        grid_width: Tiles per row of the checkerboard (20 in the paper).
        hop_latency_cycles: Cycles per router hop, including link traversal.
        link_buffer_depth: Per-link buffer entries (timing slack for the
            SpMU's reordered accesses).
        injection_rate: Flits a tile can inject per cycle.
    """

    grid_width: int = 20
    hop_latency_cycles: int = 2
    link_buffer_depth: int = 4
    injection_rate: float = 1.0

    def validate(self) -> None:
        """Raise :class:`SimulationError` on invalid parameters."""
        if self.grid_width <= 0:
            raise SimulationError("grid_width must be positive")
        if self.hop_latency_cycles <= 0:
            raise SimulationError("hop_latency_cycles must be positive")
        if self.injection_rate <= 0:
            raise SimulationError("injection_rate must be positive")


class OnChipNetwork:
    """Analytic model of the hybrid static-dynamic on-chip network."""

    def __init__(self, config: NetworkConfig | None = None):
        self._config = config or NetworkConfig()
        self._config.validate()

    @property
    def config(self) -> NetworkConfig:
        """The network's parameters."""
        return self._config

    @property
    def average_hops(self) -> float:
        """Average Manhattan distance between two random tiles in the grid."""
        width = self._config.grid_width
        # E|x1-x2| for uniform integers in [0, w) is (w^2 - 1) / (3 w).
        per_axis = (width * width - 1) / (3.0 * width)
        return 2.0 * per_axis

    @property
    def average_latency_cycles(self) -> float:
        """Average one-way latency between two random tiles."""
        return self.average_hops * self._config.hop_latency_cycles

    def streaming_transfer_cycles(self, vectors: int, producers: int = 1) -> float:
        """Cycles to stream ``vectors`` 512-bit flits from ``producers``.

        Streaming transfers are pipelined, so latency is paid once and the
        cost is dominated by serialization at the narrowest point.
        """
        if vectors < 0 or producers <= 0:
            raise SimulationError("vectors must be >= 0 and producers > 0")
        if vectors == 0:
            return 0.0
        serialization = vectors / (self._config.injection_rate * producers)
        return self.average_latency_cycles + serialization

    def round_trip_cycles(self, round_trips: int) -> float:
        """Cycles for latency-bound request/response round trips.

        Used for un-pipelinable dependences (e.g. between BFS iterations)
        where each round trip must complete before the next begins.
        """
        if round_trips < 0:
            raise SimulationError("round_trips must be non-negative")
        return round_trips * 2.0 * self.average_latency_cycles

    def congestion_factor(self, offered_load: float) -> float:
        """Latency inflation under load (simple M/D/1-style model).

        Args:
            offered_load: Fraction of link capacity consumed (0..1).

        Returns:
            A multiplier (>= 1) applied to base latency.
        """
        if offered_load < 0:
            raise SimulationError("offered_load must be non-negative")
        load = min(offered_load, 0.95)
        return 1.0 + load / (2.0 * (1.0 - load))

    def bisection_vectors_per_cycle(self) -> float:
        """Vector flits per cycle across the grid bisection."""
        return self._config.grid_width * self._config.injection_rate


def cross_tile_traffic_cycles(
    network: OnChipNetwork, requests_by_destination: Dict[int, int], lanes: int = 16
) -> float:
    """Cycles to deliver cross-tile request vectors given a destination mix.

    Args:
        network: The network model.
        requests_by_destination: Number of element requests destined to each
            tile; each tile's requests are packed ``lanes`` per vector flit.
        lanes: Vector width used for packing.
    """
    if lanes <= 0:
        raise SimulationError("lanes must be positive")
    total_cycles = 0.0
    for _destination, requests in requests_by_destination.items():
        if requests < 0:
            raise SimulationError("request counts must be non-negative")
        vectors = (requests + lanes - 1) // lanes
        total_cycles += network.streaming_transfer_cycles(vectors)
    return total_cycles
