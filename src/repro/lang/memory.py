"""Program-level memory handles: sparse tiles and atomic accumulators.

Application code written in the loop dialect needs named memories it can
randomly read and update from loop bodies. :class:`SparseTile` wraps an
SpMU-backed scratchpad region with the paper's read-modify-write operations
and an ordering mode; :class:`DramTensor` wraps a DRAM-resident array
accessed through address generators. Both record the access counts the
timing model needs (random vs. streaming, reads vs. updates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.ordering import OrderingMode
from ..core.spmu import RMWOp
from ..errors import ProgramError


@dataclass
class AccessCounters:
    """Counts of the accesses a memory handle served.

    Attributes:
        random_reads: Element-granularity random reads.
        random_updates: Element-granularity random read-modify-writes.
        streaming_reads: Elements read sequentially.
        streaming_writes: Elements written sequentially.
    """

    random_reads: int = 0
    random_updates: int = 0
    streaming_reads: int = 0
    streaming_writes: int = 0

    def merge(self, other: "AccessCounters") -> "AccessCounters":
        """Element-wise sum of two counter records."""
        return AccessCounters(
            random_reads=self.random_reads + other.random_reads,
            random_updates=self.random_updates + other.random_updates,
            streaming_reads=self.streaming_reads + other.streaming_reads,
            streaming_writes=self.streaming_writes + other.streaming_writes,
        )

    @property
    def total_random(self) -> int:
        """All random accesses (reads plus updates)."""
        return self.random_reads + self.random_updates


class SparseTile:
    """An on-chip tile supporting random reads and atomic RMW updates.

    This is the software view of data resident in one or more SpMUs. It is
    functional (a numpy array) and counts accesses; the timing model
    converts the counts into cycles using the SpMU's measured random-access
    throughput for the configured ordering mode.
    """

    def __init__(
        self,
        size: int,
        ordering: OrderingMode = OrderingMode.UNORDERED,
        name: str = "tile",
        initial: Optional[np.ndarray] = None,
    ):
        if size <= 0:
            raise ProgramError("tile size must be positive")
        self._name = name
        self._ordering = ordering
        if initial is not None:
            initial = np.asarray(initial, dtype=np.float64)
            if initial.size != size:
                raise ProgramError("initial data must match tile size")
            self._data = initial.copy()
        else:
            self._data = np.zeros(size, dtype=np.float64)
        self.counters = AccessCounters()

    @property
    def name(self) -> str:
        """Human-readable tile name (used in access summaries)."""
        return self._name

    @property
    def size(self) -> int:
        """Number of 32-bit words in the tile."""
        return self._data.size

    @property
    def ordering(self) -> OrderingMode:
        """The ordering mode updates to this tile require."""
        return self._ordering

    def read(self, index: int) -> float:
        """Random read of one element."""
        self.counters.random_reads += 1
        return float(self._data[self._check(index)])

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Random gather of several elements."""
        indices = np.asarray(indices, dtype=np.int64)
        self.counters.random_reads += int(indices.size)
        return self._data[indices].copy()

    def rmw(self, index: int, op: RMWOp, value: float = 0.0) -> float:
        """Atomic read-modify-write of one element.

        Returns the operation's result value (the same semantics as the
        SpMU FPU: new value for ADD, changed flag for MIN_REPORT_CHANGED,
        old value for SWAP / TEST_AND_SET / WRITE_IF_ZERO).
        """
        position = self._check(index)
        old = float(self._data[position])
        self.counters.random_updates += 1
        new = old
        result = old
        if op is RMWOp.READ:
            self.counters.random_updates -= 1
            self.counters.random_reads += 1
        elif op is RMWOp.WRITE:
            new = value
        elif op is RMWOp.ADD:
            new = old + value
            result = new
        elif op is RMWOp.SUB:
            new = old - value
            result = new
        elif op is RMWOp.MIN_REPORT_CHANGED:
            new = min(old, value)
            result = 1.0 if new != old else 0.0
        elif op is RMWOp.MAX:
            new = max(old, value)
            result = new
        elif op is RMWOp.SWAP:
            new = value
            result = old
        elif op is RMWOp.TEST_AND_SET:
            new = 1.0
            result = old
        elif op is RMWOp.WRITE_IF_ZERO:
            if old == 0.0:
                new = value
            result = old
        elif op is RMWOp.BIT_OR:
            new = float(int(old) | int(value))
            result = new
        elif op is RMWOp.BIT_AND:
            new = float(int(old) & int(value))
            result = new
        else:  # pragma: no cover - exhaustive enum
            raise ProgramError(f"unsupported RMW op {op}")
        self._data[position] = new
        return result

    def accumulate(self, index: int, value: float) -> float:
        """Shorthand for an atomic add."""
        return self.rmw(index, RMWOp.ADD, value)

    def fill(self, value: float) -> None:
        """Streaming fill of the whole tile."""
        self.counters.streaming_writes += self._data.size
        self._data[:] = value

    def load_stream(self, values: np.ndarray, base: int = 0) -> None:
        """Streaming load of sequential values into the tile."""
        values = np.asarray(values, dtype=np.float64)
        if base < 0 or base + values.size > self._data.size:
            raise ProgramError("streaming load outside tile")
        self.counters.streaming_writes += int(values.size)
        self._data[base : base + values.size] = values

    def store_stream(self, base: int = 0, count: Optional[int] = None) -> np.ndarray:
        """Streaming read of sequential values out of the tile."""
        count = self._data.size - base if count is None else count
        if base < 0 or base + count > self._data.size:
            raise ProgramError("streaming store outside tile")
        self.counters.streaming_reads += int(count)
        return self._data[base : base + count].copy()

    def swap_clear(self) -> np.ndarray:
        """Atomically read out the tile and clear it (SpMSpM's swap-with-zero)."""
        self.counters.random_updates += int(np.count_nonzero(self._data))
        contents = self._data.copy()
        self._data[:] = 0.0
        return contents

    def snapshot(self) -> np.ndarray:
        """A copy of the tile contents without counting an access."""
        return self._data.copy()

    def _check(self, index: int) -> int:
        if index < 0 or index >= self._data.size:
            raise ProgramError(f"tile index {index} out of range [0, {self._data.size})")
        return int(index)


class DramTensor:
    """A DRAM-resident tensor accessed through address generators.

    Functionally a flat numpy array; the counters distinguish streaming
    loads/stores from random (atomic) element updates because they have very
    different DRAM costs.
    """

    def __init__(self, size: int, name: str = "tensor", initial: Optional[np.ndarray] = None):
        if size <= 0:
            raise ProgramError("tensor size must be positive")
        self._name = name
        if initial is not None:
            initial = np.asarray(initial, dtype=np.float64)
            if initial.size != size:
                raise ProgramError("initial data must match tensor size")
            self._data = initial.copy()
        else:
            self._data = np.zeros(size, dtype=np.float64)
        self.counters = AccessCounters()

    @property
    def name(self) -> str:
        """Human-readable tensor name."""
        return self._name

    @property
    def size(self) -> int:
        """Number of 32-bit words."""
        return self._data.size

    def stream_read(self, base: int = 0, count: Optional[int] = None) -> np.ndarray:
        """Sequential read of ``count`` elements starting at ``base``."""
        count = self._data.size - base if count is None else count
        if base < 0 or base + count > self._data.size:
            raise ProgramError("stream_read outside tensor")
        self.counters.streaming_reads += int(count)
        return self._data[base : base + count].copy()

    def stream_write(self, values: np.ndarray, base: int = 0) -> None:
        """Sequential write of ``values`` starting at ``base``."""
        values = np.asarray(values, dtype=np.float64)
        if base < 0 or base + values.size > self._data.size:
            raise ProgramError("stream_write outside tensor")
        self.counters.streaming_writes += int(values.size)
        self._data[base : base + values.size] = values

    def random_read(self, index: int) -> float:
        """Random read of one element (one DRAM burst)."""
        if index < 0 or index >= self._data.size:
            raise ProgramError("random_read outside tensor")
        self.counters.random_reads += 1
        return float(self._data[index])

    def atomic_update(self, index: int, op: RMWOp, value: float) -> float:
        """Atomic DRAM read-modify-write through the address generator."""
        if index < 0 or index >= self._data.size:
            raise ProgramError("atomic_update outside tensor")
        self.counters.random_updates += 1
        old = float(self._data[index])
        new = old
        result = old
        if op is RMWOp.ADD:
            new = old + value
            result = new
        elif op is RMWOp.MIN_REPORT_CHANGED:
            new = min(old, value)
            result = 1.0 if new != old else 0.0
        elif op is RMWOp.MAX:
            new = max(old, value)
            result = new
        elif op is RMWOp.WRITE:
            new = value
        elif op is RMWOp.WRITE_IF_ZERO:
            if old == 0.0:
                new = value
            result = old
        elif op is RMWOp.TEST_AND_SET:
            new = 1.0
            result = old
        elif op is RMWOp.BIT_OR:
            new = float(int(old) | int(value))
            result = new
        else:
            raise ProgramError(f"unsupported atomic DRAM op {op}")
        self._data[index] = new
        return result

    def snapshot(self) -> np.ndarray:
        """A copy of the contents without counting an access."""
        return self._data.copy()


def summarize_counters(handles: Dict[str, AccessCounters]) -> AccessCounters:
    """Merge the access counters of several memory handles."""
    total = AccessCounters()
    for counters in handles.values():
        total = total.merge(counters)
    return total
