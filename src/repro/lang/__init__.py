"""The Capstan programming model: loop nests, sparse scans, and memories."""

from .loops import Counter, ExecutionTrace, Foreach, MemReduce, Reduce, Scan, nest_traces
from .memory import AccessCounters, DramTensor, SparseTile, summarize_counters

__all__ = [
    "Counter",
    "Scan",
    "Foreach",
    "Reduce",
    "MemReduce",
    "ExecutionTrace",
    "nest_traces",
    "AccessCounters",
    "SparseTile",
    "DramTensor",
    "summarize_counters",
]
