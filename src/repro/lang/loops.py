"""The Capstan programming model: loop nests with sparse loop headers
(Section 2.3).

Capstan programs are written as nested map-reduce loops in a dialect of
Spatial. Dense loops iterate a counter; sparse loops replace the counter
with a ``Scan`` over one or two bit-vectors:

.. code-block:: python

    # Dense:  Foreach(min until max by step par p) { j => ... }
    Foreach(Counter(0, n, par=16), body=lambda j: ...)

    # Sparse: Foreach(Scan(par=p, A.deq, B.deq)) { j, jA, jB, jp => ... }
    Foreach(Scan(a_bits, b_bits, mode=ScanMode.INTERSECT), body=body)

Loop bodies are ordinary Python callables (the "pure scalar function" of the
map-reduce decomposition); reductions are expressed with :class:`Reduce`.
Every loop execution also records how many iterations ran and with what
vector occupancy in an :class:`ExecutionTrace`, which is what the
application timing models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..config import ScannerConfig
from ..core.scanner import BitVectorScanner, ScanElement, ScanMode, ScanTiming
from ..errors import ProgramError
from ..formats.bitvector import BitVector


@dataclass
class ExecutionTrace:
    """Statistics gathered while executing a loop nest.

    Attributes:
        dense_iterations: Iterations executed by dense loop headers.
        sparse_iterations: Iterations produced by sparse (Scan) headers.
        scan_invocations: Number of Scan headers executed.
        scan_timings: Scanner timing records, one per Scan invocation.
        vector_bodies: Vectorized body issues (ceil(iters / par) summed).
        innermost_trip_counts: Trip count of every innermost loop instance,
            used for vector-length underutilization analysis.
    """

    dense_iterations: int = 0
    sparse_iterations: int = 0
    scan_invocations: int = 0
    scan_timings: List[ScanTiming] = field(default_factory=list)
    vector_bodies: int = 0
    innermost_trip_counts: List[int] = field(default_factory=list)

    def merge(self, other: "ExecutionTrace") -> "ExecutionTrace":
        """Combine two traces (e.g. from parallel loop instances)."""
        return ExecutionTrace(
            dense_iterations=self.dense_iterations + other.dense_iterations,
            sparse_iterations=self.sparse_iterations + other.sparse_iterations,
            scan_invocations=self.scan_invocations + other.scan_invocations,
            scan_timings=self.scan_timings + other.scan_timings,
            vector_bodies=self.vector_bodies + other.vector_bodies,
            innermost_trip_counts=self.innermost_trip_counts + other.innermost_trip_counts,
        )


@dataclass(frozen=True)
class Counter:
    """A dense iteration domain: ``min until max by step par p``."""

    start: int
    stop: int
    step: int = 1
    par: int = 1

    def __post_init__(self) -> None:
        if self.step == 0:
            raise ProgramError("counter step must be non-zero")
        if self.par <= 0:
            raise ProgramError("counter par must be positive")

    def indices(self) -> range:
        """The Python range this counter iterates."""
        return range(self.start, self.stop, self.step)

    @property
    def trip_count(self) -> int:
        """Number of iterations the counter produces."""
        return len(self.indices())


class Scan:
    """A sparse iteration domain produced by the bit-vector scanner.

    Args:
        vector_a: First bit-vector operand.
        vector_b: Optional second operand (two-operand scans).
        mode: Intersection, union, or single-operand scan.
        par: Output vectorization (elements consumed per cycle downstream).
        scanner: Scanner configuration; defaults to the 256-in/16-out design.
    """

    def __init__(
        self,
        vector_a: BitVector,
        vector_b: Optional[BitVector] = None,
        mode: ScanMode = ScanMode.INTERSECT,
        par: int = 16,
        scanner: Optional[ScannerConfig] = None,
    ):
        if par <= 0:
            raise ProgramError("scan par must be positive")
        if vector_b is None and mode is not ScanMode.SINGLE:
            mode = ScanMode.SINGLE
        self.vector_a = vector_a
        self.vector_b = vector_b
        self.mode = mode
        self.par = par
        self._scanner = BitVectorScanner(scanner)

    def elements(self) -> List[ScanElement]:
        """All iteration tuples the scan produces (functional semantics)."""
        return self._scanner.scan(self.vector_a, self.vector_b, self.mode)

    def count(self) -> int:
        """Number of iterations (written into the counter chain)."""
        return self._scanner.count(self.vector_a, self.vector_b, self.mode)

    def timing(self) -> ScanTiming:
        """Scanner cycle cost of streaming this scan."""
        return self._scanner.timing(self.vector_a, self.vector_b, self.mode)


Domain = Union[Counter, Scan, Sequence[int]]


def _domain_iterator(domain: Domain) -> Tuple[Iterator, int, bool]:
    """Return (iterator, trip_count, is_sparse) for a loop domain."""
    if isinstance(domain, Counter):
        indices = domain.indices()
        return iter(indices), len(indices), False
    if isinstance(domain, Scan):
        elements = domain.elements()
        return iter(elements), len(elements), True
    if isinstance(domain, (list, tuple, range)):
        return iter(domain), len(domain), False
    raise ProgramError(f"unsupported loop domain {type(domain).__name__}")


def Foreach(
    domain: Domain,
    body: Callable,
    trace: Optional[ExecutionTrace] = None,
) -> ExecutionTrace:
    """Execute ``body`` for every element of ``domain``.

    Dense domains call ``body(index)``. Sparse (Scan) domains call
    ``body(dense_index, index_a, index_b, ordinal)``, matching the
    ``{ j, jA, jB, j' => ... }`` signature of the Capstan Spatial dialect.

    Returns the :class:`ExecutionTrace` (the one passed in, if any).
    """
    trace = trace if trace is not None else ExecutionTrace()
    iterator, trip_count, is_sparse = _domain_iterator(domain)
    par = domain.par if isinstance(domain, (Counter, Scan)) else 1
    if is_sparse:
        assert isinstance(domain, Scan)
        trace.scan_invocations += 1
        trace.scan_timings.append(domain.timing())
        for element in iterator:
            body(element.dense_index, element.index_a, element.index_b, element.ordinal)
        trace.sparse_iterations += trip_count
    else:
        for index in iterator:
            body(index)
        trace.dense_iterations += trip_count
    trace.vector_bodies += (trip_count + par - 1) // par if trip_count else 0
    trace.innermost_trip_counts.append(trip_count)
    return trace


def Reduce(
    domain: Domain,
    body: Callable,
    combine: Callable[[float, float], float] = lambda a, b: a + b,
    init: float = 0.0,
    trace: Optional[ExecutionTrace] = None,
) -> Tuple[float, ExecutionTrace]:
    """Map ``body`` over ``domain`` and fold the results with ``combine``.

    Dense domains call ``body(index)``; sparse domains call
    ``body(dense_index, index_a, index_b, ordinal)``. Returns the reduced
    value and the execution trace.
    """
    trace = trace if trace is not None else ExecutionTrace()
    accumulator = init

    def reducing_body(*args):
        nonlocal accumulator
        accumulator = combine(accumulator, body(*args))

    Foreach(domain, reducing_body, trace=trace)
    return accumulator, trace


def MemReduce(
    domain: Domain,
    body: Callable,
    accumulator: "list[float]",
    index_of: Callable[..., int],
    combine: Callable[[float, float], float] = lambda a, b: a + b,
    trace: Optional[ExecutionTrace] = None,
) -> ExecutionTrace:
    """Reduce into a memory (list) indexed per iteration.

    This models Capstan's in-place accumulation into an SRAM tile: every
    iteration computes a value with ``body`` and combines it into
    ``accumulator[index_of(*args)]``.
    """
    trace = trace if trace is not None else ExecutionTrace()

    def accumulating_body(*args):
        index = index_of(*args)
        if index < 0 or index >= len(accumulator):
            raise ProgramError(f"MemReduce index {index} out of range")
        accumulator[index] = combine(accumulator[index], body(*args))

    return Foreach(domain, accumulating_body, trace=trace)


def nest_traces(traces: Iterable[ExecutionTrace]) -> ExecutionTrace:
    """Merge the traces of sibling loop instances into one."""
    merged = ExecutionTrace()
    for trace in traces:
        merged = merged.merge(trace)
    return merged
