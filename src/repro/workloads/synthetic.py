"""Synthetic sparse matrix and graph generators.

The paper evaluates on SuiteSparse and SNAP datasets that are not available
offline. Each generator here produces a matrix with a controlled size,
non-zero count, and *structure class*, because the performance effects
Capstan's evaluation studies (vectorization of clustered non-zeros, bank
conflicts from power-law degree distributions, load imbalance across tiles)
depend on structure, not on the exact values:

* :func:`banded_fem_matrix` -- clustered near the diagonal, like the
  ``bcsstk30`` / ``Trefethen_20000`` FEM and operator matrices;
* :func:`circuit_matrix` -- mostly near-diagonal with a few dense
  rows/columns, like ``ckt11752_dc_1``;
* :func:`power_law_graph` -- heavy-tailed degree distribution, like
  ``web-Stanford`` and ``flickr``;
* :func:`road_network_graph` -- bounded-degree planar-ish grid, like
  ``usroads-48``;
* :func:`uniform_random_matrix` -- unstructured control case.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import WorkloadError
from ..formats.bitvector import BitVector
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix


def _dedupe(rows: np.ndarray, cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Remove duplicate (row, col) pairs."""
    keys = rows.astype(np.int64) * (cols.max() + 1 if cols.size else 1) + cols
    _, unique_index = np.unique(keys, return_index=True)
    return rows[unique_index], cols[unique_index]


def uniform_random_matrix(
    rows: int, cols: int, nnz: int, seed: int = 0, values: str = "uniform"
) -> COOMatrix:
    """A matrix with ``nnz`` uniformly random non-zero positions."""
    if rows <= 0 or cols <= 0:
        raise WorkloadError("matrix dimensions must be positive")
    if nnz < 0 or nnz > rows * cols:
        raise WorkloadError("nnz out of range")
    rng = np.random.default_rng(seed)
    # Oversample to survive de-duplication, then trim.
    target = nnz
    r = rng.integers(0, rows, size=int(target * 1.3) + 16)
    c = rng.integers(0, cols, size=int(target * 1.3) + 16)
    r, c = _dedupe(r, c)
    r, c = r[:target], c[:target]
    vals = _make_values(rng, r.size, values)
    return COOMatrix((rows, cols), r, c, vals)


def banded_fem_matrix(
    n: int, nnz: int, bandwidth: Optional[int] = None, seed: int = 0
) -> COOMatrix:
    """A symmetric-structure matrix with non-zeros clustered near the diagonal.

    Mimics finite-element and operator matrices (``bcsstk30``,
    ``Trefethen_20000``): each stored entry lies within ``bandwidth`` of the
    diagonal, and the diagonal itself is fully populated.
    """
    if n <= 0:
        raise WorkloadError("matrix dimension must be positive")
    if nnz < n:
        raise WorkloadError("banded matrix needs at least n non-zeros (the diagonal)")
    rng = np.random.default_rng(seed)
    if bandwidth is None:
        # Choose a bandwidth that keeps the band about one-third occupied.
        per_row = max(1, nnz // n)
        bandwidth = max(2, 3 * per_row // 2)
    diag_rows = np.arange(n, dtype=np.int64)
    extra = max(0, nnz - n)
    rows = rng.integers(0, n, size=int(extra * 1.5) + 16)
    offsets = rng.integers(-bandwidth, bandwidth + 1, size=rows.size)
    cols = np.clip(rows + offsets, 0, n - 1)
    off_rows, off_cols = _dedupe(rows, cols)
    off_diagonal = off_rows != off_cols
    off_rows, off_cols = off_rows[off_diagonal], off_cols[off_diagonal]
    keep_off = max(0, nnz - n)
    rows = np.concatenate([diag_rows, off_rows[:keep_off]])
    cols = np.concatenate([diag_rows, off_cols[:keep_off]])
    order = np.argsort(rows * n + cols)
    rows, cols = rows[order], cols[order]
    vals = _make_values(rng, rows.size, "spd")
    return COOMatrix((n, n), rows, cols, vals)


def circuit_matrix(n: int, nnz: int, dense_nodes: int = 8, seed: int = 0) -> COOMatrix:
    """A circuit-simulation-like matrix: near-diagonal plus a few dense rows.

    Circuit matrices (``ckt11752_dc_1``) are mostly tridiagonal-ish with a
    handful of supply/ground nodes connected to many others.
    """
    if n <= 2:
        raise WorkloadError("matrix dimension must exceed 2")
    rng = np.random.default_rng(seed)
    diag = np.arange(n, dtype=np.int64)
    upper = np.arange(n - 1, dtype=np.int64)
    rows = [diag, upper, upper + 1]
    cols = [diag, upper + 1, upper]
    budget = nnz - (3 * n - 2)
    if budget > 0 and dense_nodes > 0:
        hubs = rng.choice(n, size=min(dense_nodes, n), replace=False)
        per_hub = max(1, budget // (2 * hubs.size))
        for hub in hubs.tolist():
            targets = rng.integers(0, n, size=per_hub)
            rows.append(np.full(per_hub, hub, dtype=np.int64))
            cols.append(targets)
            rows.append(targets)
            cols.append(np.full(per_hub, hub, dtype=np.int64))
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    r, c = _dedupe(r, c)
    vals = _make_values(rng, r.size, "spd")
    return COOMatrix((n, n), r, c, vals)


def power_law_graph(
    nodes: int, edges: int, exponent: float = 2.1, seed: int = 0
) -> COOMatrix:
    """A directed graph with a power-law in/out degree distribution.

    Mimics web and social graphs (``web-Stanford``, ``flickr``): a few
    vertices have very high degree, most have low degree. The adjacency
    matrix is returned as COO with weight 1 + uniform jitter (usable as
    SSSP edge weights).
    """
    if nodes <= 1 or edges <= 0:
        raise WorkloadError("graph must have >1 node and >0 edges")
    rng = np.random.default_rng(seed)
    # Sample endpoints with Zipf-like preference so degree is heavy-tailed.
    ranks = np.arange(1, nodes + 1, dtype=np.float64)
    weights = ranks ** (-exponent / 2.0)
    weights /= weights.sum()
    permutation = rng.permutation(nodes)
    target = edges
    src = rng.choice(nodes, size=int(target * 1.4) + 16, p=weights)
    dst = rng.choice(nodes, size=src.size, p=weights)
    src, dst = permutation[src], permutation[dst]
    keep = src != dst
    src, dst = src[keep], dst[keep]
    src, dst = _dedupe(src, dst)
    src, dst = src[:target], dst[:target]
    vals = 1.0 + rng.random(src.size)
    return COOMatrix((nodes, nodes), src, dst, vals)


def road_network_graph(nodes: int, edges: int, seed: int = 0) -> COOMatrix:
    """A road-network-like graph: low, bounded degree and high diameter.

    Mimics ``usroads-48``: vertices laid out on a grid, connected to
    geometric neighbours, plus a few long-range shortcuts.
    """
    if nodes <= 4 or edges <= 0:
        raise WorkloadError("road network needs >4 nodes and >0 edges")
    rng = np.random.default_rng(seed)
    side = int(np.ceil(np.sqrt(nodes)))
    src_list = []
    dst_list = []
    for node in range(nodes):
        x, y = node % side, node // side
        for dx, dy in ((1, 0), (0, 1)):
            nx, ny = x + dx, y + dy
            neighbor = ny * side + nx
            if nx < side and neighbor < nodes:
                src_list.append(node)
                dst_list.append(neighbor)
                src_list.append(neighbor)
                dst_list.append(node)
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    # Trim or extend with random shortcuts to hit the edge budget.
    if src.size > edges:
        keep = rng.choice(src.size, size=edges, replace=False)
        src, dst = src[keep], dst[keep]
    elif src.size < edges:
        extra = edges - src.size
        shortcut_src = rng.integers(0, nodes, size=extra)
        shortcut_dst = rng.integers(0, nodes, size=extra)
        src = np.concatenate([src, shortcut_src])
        dst = np.concatenate([dst, shortcut_dst])
    keep = src != dst
    src, dst = _dedupe(src[keep], dst[keep])
    vals = 1.0 + rng.random(src.size)
    return COOMatrix((nodes, nodes), src, dst, vals)


def sparse_vector(length: int, density: float, seed: int = 0) -> np.ndarray:
    """A dense array with approximately ``density`` fraction of non-zeros."""
    if not 0.0 <= density <= 1.0:
        raise WorkloadError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    data = np.zeros(length, dtype=np.float64)
    nnz = int(round(length * density))
    if nnz:
        positions = rng.choice(length, size=nnz, replace=False)
        data[positions] = rng.random(nnz) + 0.1
    return data


def sparse_bitvector(length: int, density: float, seed: int = 0) -> BitVector:
    """A random :class:`BitVector` built without a dense intermediate.

    Draws the identical positions and values as :func:`sparse_vector` with
    the same arguments (``BitVector.from_dense(sparse_vector(...))`` gives
    an equal vector), but feeds the index/value arrays straight into the
    packed bit-vector construction -- the natural generator for scanner and
    format microbenchmarks over large, very sparse spaces.
    """
    if not 0.0 <= density <= 1.0:
        raise WorkloadError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    nnz = int(round(length * density))
    if not nnz:
        return BitVector.empty(length)
    positions = rng.choice(length, size=nnz, replace=False)
    values = rng.random(nnz) + 0.1
    return BitVector(length, positions, values)


def clustered_sparse_vector(
    length: int, density: float, cluster_size: int = 32, seed: int = 0
) -> np.ndarray:
    """A sparse vector whose non-zeros appear in contiguous clusters.

    Real datasets cluster near the diagonal or in blocks (Section 2.3); the
    bit-tree format is evaluated with this kind of input.
    """
    if not 0.0 <= density <= 1.0:
        raise WorkloadError("density must be in [0, 1]")
    if cluster_size <= 0:
        raise WorkloadError("cluster_size must be positive")
    rng = np.random.default_rng(seed)
    data = np.zeros(length, dtype=np.float64)
    remaining = int(round(length * density))
    while remaining > 0:
        start = int(rng.integers(0, max(1, length - cluster_size)))
        span = min(cluster_size, remaining, length - start)
        data[start : start + span] = rng.random(span) + 0.1
        remaining -= span
    return data


def _make_values(rng: np.random.Generator, count: int, kind: str) -> np.ndarray:
    """Generate non-zero values: uniform (0.1, 1.1) or SPD-friendly."""
    if kind == "uniform":
        return rng.random(count) + 0.1
    if kind == "spd":
        # Values in (0.5, 1.5); diagonal dominance is added by callers that
        # need SPD systems (the BiCGStab workload).
        return rng.random(count) + 0.5
    raise WorkloadError(f"unknown value kind {kind!r}")


def make_diagonally_dominant(matrix: COOMatrix) -> CSRMatrix:
    """Return a CSR copy with the diagonal boosted to ensure dominance.

    Krylov solvers (BiCGStab) need a well conditioned system; boosting the
    diagonal above the row sums guarantees convergence without changing the
    sparsity structure.
    """
    rows, cols, values = matrix.to_coo_arrays()
    n = min(matrix.shape)
    row_sums = np.zeros(matrix.shape[0], dtype=np.float64)
    np.add.at(row_sums, rows, np.abs(values))
    diag_rows = np.arange(n, dtype=np.int64)
    diag_vals = row_sums[:n] + 1.0
    all_rows = np.concatenate([rows, diag_rows])
    all_cols = np.concatenate([cols, diag_rows])
    all_vals = np.concatenate([values, diag_vals])
    return CSRMatrix.from_coo_arrays(matrix.shape, all_rows, all_cols, all_vals)
