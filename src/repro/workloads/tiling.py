"""Workload tiling and partitioning (the Metis substitute).

The paper tiles graph datasets with Metis, weighting nodes by edge count to
produce load-balanced tiles, and tiles linear algebra datasets round-robin
by rows, columns, or non-zeros. Metis is not available offline; the greedy
balanced partitioner here provides the property the performance model
depends on -- balanced per-tile edge counts -- and the imbalance metric it
reports feeds the Figure 7 "Imbalance" category.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import WorkloadError
from ..formats.csr import CSRMatrix


@dataclass(frozen=True)
class Partitioning:
    """An assignment of work items (rows / nodes / non-zeros) to tiles.

    Attributes:
        assignments: ``assignments[i]`` is the tile owning item ``i``.
        tiles: Number of tiles.
        weights: Per-item weights used when balancing.
    """

    assignments: np.ndarray
    tiles: int
    weights: np.ndarray

    def tile_items(self, tile: int) -> np.ndarray:
        """Indices of the items assigned to ``tile``."""
        if tile < 0 or tile >= self.tiles:
            raise WorkloadError(f"tile {tile} out of range")
        return np.nonzero(self.assignments == tile)[0]

    def tile_weights(self) -> np.ndarray:
        """Total weight per tile."""
        totals = np.zeros(self.tiles, dtype=np.float64)
        np.add.at(totals, self.assignments, self.weights)
        return totals

    @property
    def imbalance(self) -> float:
        """Max tile weight divided by the mean tile weight (1.0 is perfect)."""
        totals = self.tile_weights()
        mean = totals.mean() if totals.size else 0.0
        if mean == 0:
            return 1.0
        return float(totals.max() / mean)

    @property
    def imbalance_fraction(self) -> float:
        """Extra critical-path work caused by imbalance, as a fraction."""
        return max(0.0, self.imbalance - 1.0)


def round_robin_partition(
    items: int, tiles: int, weights: Sequence[float] | None = None
) -> Partitioning:
    """Round-robin assignment of items to tiles (the linear-algebra tiler)."""
    if items < 0 or tiles <= 0:
        raise WorkloadError("items must be >= 0 and tiles > 0")
    assignments = np.arange(items, dtype=np.int64) % tiles
    weight_array = (
        np.asarray(weights, dtype=np.float64)
        if weights is not None
        else np.ones(items, dtype=np.float64)
    )
    if weight_array.size != items:
        raise WorkloadError("weights must match item count")
    return Partitioning(assignments=assignments, tiles=tiles, weights=weight_array)


def balanced_partition(weights: Sequence[float], tiles: int) -> Partitioning:
    """Greedy balanced partition: heaviest item to the lightest tile.

    This is the Metis substitute for graph tiling with edge-count weights:
    it produces near-balanced tiles (typically within a few percent of the
    optimum for heavy-tailed weight distributions). The lightest tile is
    tracked in a heap keyed ``(total, tile)``, which selects the same tile
    as an argmin over totals (lowest index among ties) at a fraction of
    the cost.
    """
    weight_array = np.asarray(weights, dtype=np.float64)
    if tiles <= 0:
        raise WorkloadError("tiles must be positive")
    if np.any(weight_array < 0):
        raise WorkloadError("weights must be non-negative")
    assignment_of = [0] * weight_array.size
    order = np.argsort(-weight_array, kind="stable")
    heap = [(0.0, tile) for tile in range(tiles)]
    item_weights = weight_array.tolist()
    for item in order.tolist():
        total, tile = heapq.heappop(heap)
        assignment_of[item] = tile
        heapq.heappush(heap, (total + item_weights[item], tile))
    assignments = np.asarray(assignment_of, dtype=np.int64)
    return Partitioning(assignments=assignments, tiles=tiles, weights=weight_array)


def partition_graph_by_edges(matrix: CSRMatrix, tiles: int) -> Partitioning:
    """Partition a graph's vertices with edge-count weights (paper's tiling)."""
    return balanced_partition(matrix.row_lengths().astype(np.float64), tiles)


def partition_rows_round_robin(matrix: CSRMatrix, tiles: int) -> Partitioning:
    """Round-robin row partition with non-zero weights (linear algebra)."""
    return round_robin_partition(
        matrix.shape[0], tiles, matrix.row_lengths().astype(np.float64)
    )


def partition_nonzeros(nnz: int, tiles: int) -> Partitioning:
    """Round-robin partition of non-zero values (COO workloads)."""
    return round_robin_partition(nnz, tiles)


def cross_tile_fraction(matrix: CSRMatrix, partitioning: Partitioning) -> float:
    """Fraction of edges whose endpoints live in different tiles.

    Drives the shuffle-network traffic model (Table 11): graph partitioning
    reduces cross-partition communication, but power-law graphs always keep
    a substantial cross-tile fraction.
    """
    if partitioning.assignments.size != matrix.shape[0]:
        raise WorkloadError("partitioning must cover every row/vertex")
    assignments = partitioning.assignments
    cross = 0
    total = 0
    for row in range(matrix.shape[0]):
        cols, _ = matrix.row_slice(row)
        total += cols.size
        if cols.size:
            cross += int(np.count_nonzero(assignments[cols] != assignments[row]))
    return cross / total if total else 0.0
