"""Pruned ResNet-50 convolution layers (Table 6, Conv rows).

The paper trains a ResNet-50 model and prunes it to 30% weight density,
then evaluates sparse convolution on three layers. Without the trained
model, this module generates synthetic activation and weight tensors with
the published shapes and densities; activation sparsity follows ReLU-like
channel-correlated patterns, and weight sparsity is unstructured (magnitude
pruning leaves unstructured sparsity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import WorkloadError


@dataclass(frozen=True)
class ConvLayerSpec:
    """Published shape/density of one evaluated convolution layer.

    The Table 6 notation is ``dim . kdim . inCh . outCh`` with non-zeros and
    densities listed as ``activations . kernel``.
    """

    name: str
    spatial_dim: int
    kernel_dim: int
    in_channels: int
    out_channels: int
    activation_nnz: int
    weight_nnz: int
    activation_density: float
    weight_density: float


#: The three ResNet-50 layers evaluated in the paper.
RESNET_LAYERS: Dict[str, ConvLayerSpec] = {
    "resnet50-1": ConvLayerSpec("resnet50-1", 56, 1, 64, 64, 88_837, 1_229, 0.443, 0.30),
    "resnet50-2": ConvLayerSpec("resnet50-2", 56, 3, 64, 64, 47_574, 11_057, 0.237, 0.30),
    "resnet50-29": ConvLayerSpec("resnet50-29", 14, 3, 256, 256, 41_552, 176_460, 0.828, 0.30),
}


@dataclass
class ConvWorkload:
    """A generated sparse convolution problem.

    Attributes:
        spec: The published layer specification this imitates.
        activations: Input activations, shape ``(in_channels, H, W)``.
        weights: Kernel weights, shape
            ``(in_channels, kH, kW, out_channels)``.
        scale: Channel scale factor applied to the published layer.
    """

    spec: ConvLayerSpec
    activations: np.ndarray
    weights: np.ndarray
    scale: float

    @property
    def activation_density(self) -> float:
        """Fraction of non-zero activations actually generated."""
        return float(np.count_nonzero(self.activations)) / self.activations.size

    @property
    def weight_density(self) -> float:
        """Fraction of non-zero weights actually generated."""
        return float(np.count_nonzero(self.weights)) / self.weights.size

    @property
    def output_shape(self) -> Tuple[int, int, int]:
        """Output tensor shape ``(out_channels, H, W)`` (same-padded)."""
        out_channels = self.weights.shape[3]
        return (out_channels, self.activations.shape[1], self.activations.shape[2])

    def macs(self) -> int:
        """Multiply-accumulates a dense convolution of this layer would do."""
        in_ch, h, w = self.activations.shape
        _, kh, kw, out_ch = self.weights.shape
        return in_ch * h * w * kh * kw * out_ch

    def sparse_macs(self) -> int:
        """Multiply-accumulates a zero-skipping convolution performs.

        Only pairs where both the activation and the weight are non-zero
        contribute; this is the work SCNN and Capstan's sparse Conv do.
        """
        total = 0
        _, kh, kw, out_ch = self.weights.shape
        for channel in range(self.activations.shape[0]):
            act_nnz = int(np.count_nonzero(self.activations[channel]))
            weight_nnz = int(np.count_nonzero(self.weights[channel]))
            total += act_nnz * weight_nnz
        return total


def layer_names() -> List[str]:
    """Names of the registered ResNet-50 layers."""
    return list(RESNET_LAYERS)


def generate_conv_layer(name: str, scale: float = 0.25, seed: int = 5) -> ConvWorkload:
    """Generate a synthetic pruned layer matching the published statistics.

    Args:
        name: One of :func:`layer_names`.
        scale: Channel scale factor (spatial dimensions are kept) so the
            functional simulation stays tractable; densities are preserved.
        seed: Random seed.
    """
    if name not in RESNET_LAYERS:
        raise WorkloadError(f"unknown conv layer {name!r}; known: {sorted(RESNET_LAYERS)}")
    if not 0 < scale <= 1.0:
        raise WorkloadError("scale must be in (0, 1]")
    spec = RESNET_LAYERS[name]
    rng = np.random.default_rng(seed)
    in_ch = max(8, int(round(spec.in_channels * scale)))
    out_ch = max(16, int(round(spec.out_channels * scale)))
    h = w = spec.spatial_dim
    k = spec.kernel_dim

    activations = rng.random((in_ch, h, w)) + 0.05
    # ReLU-style sparsity: zero out whole spatially correlated patches plus
    # random element dropout until the target density is reached.
    act_mask = rng.random((in_ch, h, w)) < spec.activation_density
    activations *= act_mask

    weights = rng.standard_normal((in_ch, k, k, out_ch))
    weight_mask = rng.random((in_ch, k, k, out_ch)) < spec.weight_density
    weights *= weight_mask
    # Guarantee at least one non-zero weight per input channel so every
    # channel exercises the kernel-scan path.
    for channel in range(in_ch):
        if not np.any(weights[channel]):
            weights[channel, 0, 0, 0] = 1.0

    return ConvWorkload(spec=spec, activations=activations, weights=weights, scale=scale)


def reference_convolution(workload: ConvWorkload) -> np.ndarray:
    """Dense reference convolution matching Table 2's scatter semantics.

    Table 2 defines the kernel as ``Out[oC, r+rK, c+cK] += In[iC, r, c] *
    K[iC][rK, cK, oC]`` with the output cropped back to the input's spatial
    extent (same padding, stride 1). Used to validate the sparse-iteration
    implementation in :mod:`repro.apps.conv`.
    """
    in_ch, h, w = workload.activations.shape
    _, kh, kw, out_ch = workload.weights.shape
    pad_h, pad_w = kh // 2, kw // 2
    padded = np.zeros((out_ch, h + 2 * pad_h, w + 2 * pad_w), dtype=np.float64)
    for oc in range(out_ch):
        for ic in range(in_ch):
            for r in range(kh):
                for c in range(kw):
                    padded[oc, r : r + h, c : c + w] += (
                        workload.weights[ic, r, c, oc] * workload.activations[ic]
                    )
    return padded[:, pad_h : pad_h + h, pad_w : pad_w + w]
