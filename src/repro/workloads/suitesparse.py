"""Synthetic stand-ins for the paper's named datasets (Table 6).

Every dataset the paper evaluates is registered here with its published
dimension, non-zero count, density, and structure class. Each dataset can
be generated at a reduced ``scale`` that preserves the density and the
structure class -- the properties the performance model is sensitive to --
but since the profiling kernels were vectorized the published (``scale
= 1.0``) sizes are tractable and are the default. The registry records
both the paper's numbers and the generated matrix so reports can state the
substitution precisely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import WorkloadError
from ..formats.coo import COOMatrix
from .synthetic import (
    banded_fem_matrix,
    circuit_matrix,
    power_law_graph,
    road_network_graph,
    uniform_random_matrix,
)

#: Default scale factor applied to the published dataset sizes. The
#: vectorized profiling kernels handle the full published sizes, so the
#: default reproduces them exactly; pass a smaller ``scale`` for quick runs
#: (the eval harness defaults to 1/64, tests use 1/256 and below).
DEFAULT_SCALE = 1.0


@dataclass(frozen=True)
class DatasetSpec:
    """Published properties of one Table 6 dataset and how to imitate it.

    Attributes:
        name: SuiteSparse / SNAP name used in the paper.
        rows: Published row count (square matrices use rows == cols).
        cols: Published column count.
        nnz: Published non-zero count.
        structure: Structure class used to pick the generator.
        apps: The paper's application group(s) that use this dataset.
    """

    name: str
    rows: int
    cols: int
    nnz: int
    structure: str
    apps: str

    @property
    def density_percent(self) -> float:
        """Published density in percent (matches Table 6's "% Dense")."""
        return 100.0 * self.nnz / (self.rows * self.cols)


#: The Table 6 registry (convolution layers live in :mod:`repro.workloads.resnet`).
TABLE6_DATASETS: Dict[str, DatasetSpec] = {
    "ckt11752_dc_1": DatasetSpec(
        "ckt11752_dc_1", 49_702, 49_702, 333_029, "circuit", "SpMV/M+M/BiCGStab"
    ),
    "Trefethen_20000": DatasetSpec(
        "Trefethen_20000", 20_000, 20_000, 554_466, "banded", "SpMV/M+M/BiCGStab"
    ),
    "bcsstk30": DatasetSpec(
        "bcsstk30", 28_924, 28_924, 2_043_492, "banded", "SpMV/M+M/BiCGStab"
    ),
    "usroads-48": DatasetSpec(
        "usroads-48", 126_146, 126_146, 323_900, "road", "PR/BFS/SSSP"
    ),
    "web-Stanford": DatasetSpec(
        "web-Stanford", 281_903, 281_903, 2_312_497, "power-law", "PR/BFS/SSSP"
    ),
    "flickr": DatasetSpec(
        "flickr", 820_878, 820_878, 9_837_214, "power-law", "PR/BFS/SSSP"
    ),
    "p2p-Gnutella31": DatasetSpec(
        "p2p-Gnutella31", 62_586, 62_586, 147_892, "power-law", "sensitivity studies"
    ),
    "spaceStation_4": DatasetSpec(
        "spaceStation_4", 950, 950, 14_158, "banded", "SpMSpM"
    ),
    "qc324": DatasetSpec("qc324", 324, 324, 27_054, "dense-ish", "SpMSpM"),
    "mbeacxc": DatasetSpec("mbeacxc", 496, 496, 49_920, "dense-ish", "SpMSpM"),
    "fb": DatasetSpec("fb", 63_731, 63_731, 1_634_180, "power-law", "Graphicionado comparison"),
}

_GENERATORS: Dict[str, Callable[..., COOMatrix]] = {
    "circuit": lambda n, nnz, seed: circuit_matrix(n, nnz, seed=seed),
    "banded": lambda n, nnz, seed: banded_fem_matrix(n, nnz, seed=seed),
    "power-law": lambda n, nnz, seed: power_law_graph(n, nnz, seed=seed),
    "road": lambda n, nnz, seed: road_network_graph(n, nnz, seed=seed),
    "dense-ish": lambda n, nnz, seed: uniform_random_matrix(n, n, nnz, seed=seed),
}


@dataclass(frozen=True)
class GeneratedDataset:
    """A generated stand-in plus the published spec it imitates."""

    spec: DatasetSpec
    matrix: COOMatrix
    scale: float

    @property
    def name(self) -> str:
        """The dataset's published name."""
        return self.spec.name

    @property
    def scaled_description(self) -> str:
        """A one-line description of the substitution for reports."""
        return (
            f"{self.spec.name}: paper {self.spec.rows}x{self.spec.cols}, "
            f"{self.spec.nnz} nnz ({self.spec.density_percent:.3f}% dense); "
            f"generated {self.matrix.shape[0]}x{self.matrix.shape[1]}, "
            f"{self.matrix.nnz} nnz at scale {self.scale:g}"
        )


_DATASET_CACHE: Dict[tuple, GeneratedDataset] = {}


def dataset_names(app_group: Optional[str] = None) -> List[str]:
    """Names of registered datasets, optionally filtered by app group."""
    names = []
    for name, spec in TABLE6_DATASETS.items():
        if app_group is None or app_group.lower() in spec.apps.lower():
            names.append(name)
    return names


def load_dataset(
    name: str, scale: float = DEFAULT_SCALE, seed: int = 11, min_dim: int = 64
) -> GeneratedDataset:
    """Generate (and cache) the synthetic stand-in for a named dataset.

    Args:
        name: A key of :data:`TABLE6_DATASETS`.
        scale: Linear scale factor applied to the published row/column
            counts; non-zeros scale by the same factor so density is
            preserved. ``scale=1.0`` reproduces the published size.
        seed: Generator seed (datasets are deterministic per seed).
        min_dim: Lower bound on the generated dimension, so tiny scales
            still produce a meaningful matrix.
    """
    if name not in TABLE6_DATASETS:
        raise WorkloadError(
            f"unknown dataset {name!r}; known: {sorted(TABLE6_DATASETS)}"
        )
    if scale <= 0 or scale > 1.0:
        raise WorkloadError("scale must be in (0, 1]")
    key = (name, round(scale, 6), seed, min_dim)
    cached = _DATASET_CACHE.get(key)
    if cached is not None:
        return cached
    spec = TABLE6_DATASETS[name]
    rows = max(min_dim, int(round(spec.rows * scale)))
    # Preserve the average number of non-zeros per row (degree) rather than
    # density: per-row non-zero counts drive the vectorization, bank
    # conflict, and load-imbalance effects the evaluation studies.
    linear_ratio = rows / spec.rows
    nnz = max(rows, int(round(spec.nnz * linear_ratio)))
    nnz = min(nnz, rows * rows // 2)
    generator = _GENERATORS[spec.structure]
    matrix = generator(rows, nnz, seed)
    generated = GeneratedDataset(spec=spec, matrix=matrix, scale=scale)
    _DATASET_CACHE[key] = generated
    return generated


#: The three SpMV / M+M / BiCGStab dataset names of Table 6.
LINEAR_ALGEBRA_DATASET_NAMES = ("ckt11752_dc_1", "Trefethen_20000", "bcsstk30")

#: The three PR / BFS / SSSP dataset names of Table 6.
GRAPH_DATASET_NAMES = ("usroads-48", "web-Stanford", "flickr")

#: The three SpMSpM dataset names of Table 6.
SPMSPM_DATASET_NAMES = ("spaceStation_4", "qc324", "mbeacxc")


def linear_algebra_datasets(scale: float = DEFAULT_SCALE) -> List[GeneratedDataset]:
    """The three SpMV / M+M / BiCGStab datasets of Table 6."""
    return [load_dataset(n, scale) for n in LINEAR_ALGEBRA_DATASET_NAMES]


def graph_datasets(scale: float = DEFAULT_SCALE) -> List[GeneratedDataset]:
    """The three PR / BFS / SSSP datasets of Table 6."""
    return [load_dataset(n, scale) for n in GRAPH_DATASET_NAMES]


def spmspm_datasets(scale: float = 1.0) -> List[GeneratedDataset]:
    """The three SpMSpM datasets of Table 6 (small enough for full scale)."""
    return [load_dataset(n, scale) for n in SPMSPM_DATASET_NAMES]
