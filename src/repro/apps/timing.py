"""Capstan platform timing model.

Converts a platform-independent :class:`~repro.apps.profile.WorkloadProfile`
into an end-to-end cycle estimate and a Figure 7 stall breakdown for one
Capstan configuration. The model follows the paper's additive methodology:

1. start from the lane-work a perfectly utilized machine would need
   (Active);
2. add analytically computed overheads: scanner cycles on empty vectors
   (Scan), data movement through the datapath with ideal DRAM (Load/Store),
   under-filled vectors (Vector Length), uneven tiles (Imbalance);
3. add the modelled costs of the network (round trips for un-pipelinable
   algorithms plus shuffle-network serialization of cross-tile traffic),
   SRAM bank conflicts (from the SpMU microbenchmark throughput for the
   configured ordering / hashing / allocator), and DRAM bandwidth beyond
   the ideal-memory baseline.

Every sensitivity study in the evaluation is a re-costing of the same
profile under a different :class:`CapstanPlatform`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..config import CapstanConfig, MemoryTechnology, ShuffleMode, SpMUConfig
from ..core.ordering import OrderingMode
from ..core.spmu import effective_bank_throughput
from ..core.shuffle import merge_efficiency
from ..sim.dram import DRAMModel, TrafficSummary
from ..sim.network import NetworkConfig, OnChipNetwork
from ..sim.stats import RunMetrics, StallBreakdown
from .profile import WorkloadProfile


@dataclass(frozen=True)
class CapstanPlatform:
    """One Capstan configuration to cost a workload on.

    Attributes:
        config: The architecture configuration (grid, memory technology,
            scanner, SpMU, shuffle parameters).
        ordering: SpMU memory ordering mode (Table 10).
        bank_mapping: ``"hash"`` or ``"linear"`` (Table 9).
        allocator: ``"separable"``, ``"greedy"``, or ``"arbitrated"``
            (Table 9's Alloc / Weak Alloc / Arb columns).
        ideal_sram: Model bank-conflict-free SRAM (Table 9's Ideal column).
        ideal_network: Remove all network costs (Table 12's ideal row).
        ideal_memory: Remove DRAM bandwidth limits (Table 12's ideal row).
        name: Label used in reports.
    """

    config: CapstanConfig = field(default_factory=CapstanConfig)
    ordering: OrderingMode = OrderingMode.UNORDERED
    bank_mapping: str = "hash"
    allocator: str = "separable"
    ideal_sram: bool = False
    ideal_network: bool = False
    ideal_memory: bool = False
    name: str = "capstan-hbm2e"

    def with_memory(self, memory: MemoryTechnology, name: Optional[str] = None) -> "CapstanPlatform":
        """A copy of this platform with a different memory technology."""
        return replace(
            self,
            config=self.config.with_memory(memory),
            name=name or f"capstan-{memory.value}",
        )


def default_platform(memory: MemoryTechnology = MemoryTechnology.HBM2E) -> CapstanPlatform:
    """The paper's evaluated Capstan design point with the given memory."""
    return CapstanPlatform(config=CapstanConfig(memory=memory), name=f"capstan-{memory.value}")


def ideal_platform() -> CapstanPlatform:
    """Capstan with an ideal network and memory (Table 12, first row)."""
    return CapstanPlatform(
        config=CapstanConfig(memory=MemoryTechnology.IDEAL),
        ideal_sram=True,
        ideal_network=True,
        ideal_memory=True,
        name="capstan-ideal",
    )


#: Merge-efficiency cache keyed by (mode, rounded cross fraction).
_MERGE_EFFICIENCY_CACHE: dict = {}


def _shuffle_efficiency(mode: ShuffleMode, cross_fraction: float) -> float:
    """Delivered-slot efficiency of the shuffle network for a traffic mix."""
    if mode is ShuffleMode.NONE:
        # Without a shuffle network every cross-partition request is a
        # scalar transfer; efficiency collapses towards 1/lanes for
        # cross-heavy traffic.
        return max(1.0 / 16.0, 1.0 - cross_fraction * (15.0 / 16.0))
    key = (mode, round(min(max(cross_fraction, 0.0), 1.0), 2))
    cached = _MERGE_EFFICIENCY_CACHE.get(key)
    if cached is None:
        cached = merge_efficiency(mode, cross_partition_fraction=key[1], vectors=24)
        _MERGE_EFFICIENCY_CACHE[key] = cached
    return max(cached, 1.0 / 16.0)


def estimate_cycles(
    profile: WorkloadProfile, platform: Optional[CapstanPlatform] = None
) -> Tuple[float, StallBreakdown]:
    """Estimate end-to-end cycles and the stall breakdown for one run.

    Args:
        profile: The application's platform-independent execution profile.
        platform: The Capstan configuration to cost it on (defaults to the
            paper's HBM2E design point).

    Returns:
        ``(cycles, breakdown)`` where ``breakdown.total_cycles == cycles``.
    """
    platform = platform or default_platform()
    config = platform.config
    lanes = config.lanes
    units = max(1, min(config.compute_units, profile.outer_parallelism))
    breakdown = StallBreakdown()

    # --- Active: lane-work on a perfectly utilized machine. ---------------- #
    breakdown.active = profile.compute_iterations / (lanes * units)

    # --- Vector length: slots issued minus useful lane-work. ---------------- #
    slot_cycles = profile.vector_slots / units
    breakdown.vector_length = max(0.0, slot_cycles - breakdown.active)

    # --- Scan: scanner overhead beyond what the loop bodies hide. ---------- #
    scan_cycles = profile.scan_cycles / units
    scan_hidden = min(scan_cycles, slot_cycles)
    breakdown.scan = (profile.scan_empty_cycles / units) + max(0.0, scan_cycles - scan_hidden)

    # --- Load/Store: moving data through the datapath with ideal DRAM. ----- #
    streamed_words = profile.total_stream_bytes / 4.0
    breakdown.load_store = streamed_words / (lanes * units)

    # --- Imbalance: uneven tiles stretch the critical path. ---------------- #
    balanced = breakdown.active + breakdown.vector_length + breakdown.scan
    breakdown.imbalance = balanced * profile.imbalance_fraction

    # --- Network: round trips + shuffle serialization of cross-tile traffic. #
    if not platform.ideal_network:
        network = OnChipNetwork(NetworkConfig(grid_width=max(2, int(round(units ** 0.5)))))
        round_trip = network.round_trip_cycles(profile.sequential_rounds)
        cross_requests = profile.cross_tile_request_fraction * profile.sram_random_accesses
        efficiency = _shuffle_efficiency(config.shuffle.mode, profile.cross_tile_request_fraction)
        shuffle_cycles = cross_requests / (lanes * units) * (1.0 / efficiency - 1.0)
        pipeline_penalty = 0.0
        if not profile.pipelinable:
            # Un-pipelinable outer iterations also pay the per-iteration
            # pipeline fill latency.
            pipeline_penalty = profile.sequential_rounds * network.average_latency_cycles
        breakdown.network = round_trip + shuffle_cycles + pipeline_penalty

    # --- SRAM: bank conflicts beyond the conflict-free ideal. --------------- #
    banks = config.spmu.banks
    ideal_sram_cycles = profile.sram_random_accesses / (banks * units)
    if platform.ideal_sram:
        sram_cycles = ideal_sram_cycles
    else:
        allocator_kind = "separable" if platform.allocator == "separable" else "greedy"
        if platform.allocator == "arbitrated":
            ordering_for_tput = OrderingMode.ARBITRATED
        else:
            ordering_for_tput = platform.ordering
        throughput = effective_bank_throughput(
            ordering=ordering_for_tput,
            bank_mapping="hash",
            allocator_kind=allocator_kind,
            config=config.spmu,
            lanes=lanes,
        )
        throughput = max(throughput, 1.0)
        normal_fraction = 1.0 - (
            profile.strided_fraction if platform.bank_mapping == "linear" else 0.0
        )
        strided_fraction = 1.0 - normal_fraction
        accesses = profile.sram_random_accesses
        sram_cycles = (accesses * normal_fraction) / (throughput * units)
        # Power-of-two strides under linear mapping serialize onto one bank.
        sram_cycles += (accesses * strided_fraction) / (1.0 * units)
    breakdown.sram = max(0.0, sram_cycles - min(ideal_sram_cycles, breakdown.active))

    # --- DRAM: bandwidth-limited traffic beyond the ideal-DRAM baseline. ---- #
    if not platform.ideal_memory:
        dram = DRAMModel(config.memory, clock_ghz=config.clock_ghz)
        stream_read = profile.dram_stream_read_bytes
        if config.compression_enabled and profile.pointer_stream_bytes > 0:
            saved = profile.pointer_stream_bytes * (
                1.0 - 1.0 / max(profile.pointer_compression_ratio, 1.0)
            )
            stream_read = max(0.0, stream_read - saved)
        traffic = TrafficSummary(
            streaming_read_bytes=stream_read,
            streaming_write_bytes=profile.dram_stream_write_bytes,
            random_accesses=profile.dram_random_reads + 2 * profile.dram_random_updates,
        )
        dram_cycles = dram.traffic_cycles(traffic)
        breakdown.dram = max(0.0, dram_cycles - breakdown.load_store)

    return breakdown.total_cycles, breakdown


def run_metrics(
    profile: WorkloadProfile, platform: Optional[CapstanPlatform] = None
) -> RunMetrics:
    """Estimate cycles and wrap them in a :class:`RunMetrics` record."""
    platform = platform or default_platform()
    cycles, breakdown = estimate_cycles(profile, platform)
    return RunMetrics(
        app=profile.app,
        dataset=profile.dataset,
        platform=platform.name,
        cycles=cycles,
        clock_ghz=platform.config.clock_ghz,
        breakdown=breakdown,
        extra=dict(profile.extra),
    )
