"""Capstan platform timing model.

Converts a platform-independent :class:`~repro.apps.profile.WorkloadProfile`
into an end-to-end cycle estimate and a Figure 7 stall breakdown for one
Capstan configuration. The model follows the paper's additive methodology:

1. start from the lane-work a perfectly utilized machine would need
   (Active);
2. add analytically computed overheads: scanner cycles on empty vectors
   (Scan), data movement through the datapath with ideal DRAM (Load/Store),
   under-filled vectors (Vector Length), uneven tiles (Imbalance);
3. add the modelled costs of the network (round trips for un-pipelinable
   algorithms plus shuffle-network serialization of cross-tile traffic),
   SRAM bank conflicts (from the SpMU microbenchmark throughput for the
   configured ordering / hashing / allocator), and DRAM bandwidth beyond
   the ideal-memory baseline.

Every sensitivity study in the evaluation is a re-costing of the same
profile under a different :class:`CapstanPlatform`. Single pairs go through
:func:`estimate_cycles`; design-space sweeps go through
:func:`estimate_cycles_batch`, which stacks profile fields into numpy
arrays and costs the whole (profile x platform) matrix in vectorized
passes while producing bit-identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._budget import iter_chunked, plan_chunks, resolve_memory_budget
from ..config import CapstanConfig, MemoryTechnology, ShuffleConfig, ShuffleMode
from ..core.ordering import OrderingMode
from ..core.spmu import (
    SpMUVariant,
    effective_bank_throughput,
    effective_bank_throughput_batch,
)
from ..core.shuffle import merge_efficiency
from ..sim.dram import (
    BURST_BYTES,
    RANDOM_ACCESS_EFFICIENCY,
    STREAM_ACCESS_EFFICIENCY,
    DRAMModel,
    TrafficSummary,
)
from ..sim.network import NetworkConfig, OnChipNetwork
from ..sim.stats import STALL_CATEGORIES, RunMetrics, StallBreakdown
from .profile import WorkloadProfile


@dataclass(frozen=True)
class CapstanPlatform:
    """One Capstan configuration to cost a workload on.

    Attributes:
        config: The architecture configuration (grid, memory technology,
            scanner, SpMU, shuffle parameters).
        ordering: SpMU memory ordering mode (Table 10).
        bank_mapping: ``"hash"`` or ``"linear"`` (Table 9).
        allocator: ``"separable"``, ``"greedy"``, or ``"arbitrated"``
            (Table 9's Alloc / Weak Alloc / Arb columns).
        ideal_sram: Model bank-conflict-free SRAM (Table 9's Ideal column).
        ideal_network: Remove all network costs (Table 12's ideal row).
        ideal_memory: Remove DRAM bandwidth limits (Table 12's ideal row).
        name: Label used in reports.
    """

    config: CapstanConfig = field(default_factory=CapstanConfig)
    ordering: OrderingMode = OrderingMode.UNORDERED
    bank_mapping: str = "hash"
    allocator: str = "separable"
    ideal_sram: bool = False
    ideal_network: bool = False
    ideal_memory: bool = False
    name: str = "capstan-hbm2e"

    def with_memory(
        self, memory: MemoryTechnology, name: Optional[str] = None
    ) -> "CapstanPlatform":
        """A copy of this platform with a different memory technology."""
        return replace(
            self,
            config=self.config.with_memory(memory),
            name=name or f"capstan-{memory.value}",
        )


def default_platform(memory: MemoryTechnology = MemoryTechnology.HBM2E) -> CapstanPlatform:
    """The paper's evaluated Capstan design point with the given memory."""
    return CapstanPlatform(config=CapstanConfig(memory=memory), name=f"capstan-{memory.value}")


def ideal_platform() -> CapstanPlatform:
    """Capstan with an ideal network and memory (Table 12, first row)."""
    return CapstanPlatform(
        config=CapstanConfig(memory=MemoryTechnology.IDEAL),
        ideal_sram=True,
        ideal_network=True,
        ideal_memory=True,
        name="capstan-ideal",
    )


#: Merge-efficiency cache keyed by (full shuffle config, lanes, rounded
#: cross fraction). Keying by the whole configuration (not just the mode)
#: keeps platforms that share a mode but differ in crossbar parameters from
#: aliasing each other's cached efficiency.
_MERGE_EFFICIENCY_CACHE: dict = {}

#: Request slots sampled by the merge-efficiency microbenchmark; the vector
#: count is derived from this so wider machines measure the same traffic.
_MERGE_CALIBRATION_SLOTS = 384


def _shuffle_efficiency(shuffle: ShuffleConfig, lanes: int, cross_fraction: float) -> float:
    """Delivered-slot efficiency of the shuffle network for a traffic mix."""
    if shuffle.mode is ShuffleMode.NONE:
        # Without a shuffle network every cross-partition request is a
        # scalar transfer; efficiency collapses towards 1/lanes for
        # cross-heavy traffic.
        return max(1.0 / lanes, 1.0 - cross_fraction * ((lanes - 1.0) / lanes))
    key = (shuffle, lanes, round(min(max(cross_fraction, 0.0), 1.0), 2))
    cached = _MERGE_EFFICIENCY_CACHE.get(key)
    if cached is None:
        cached = merge_efficiency(
            shuffle.mode,
            cross_partition_fraction=key[2],
            lanes=lanes,
            vectors=max(8, _MERGE_CALIBRATION_SLOTS // lanes),
            config=shuffle,
        )
        _MERGE_EFFICIENCY_CACHE[key] = cached
    return max(cached, 1.0 / lanes)


#: Reused analytic models, keyed by their structural parameters. Both are
#: stateless, so sharing one instance across estimates cannot change any
#: result -- it only removes per-call construction from sweeps.
_NETWORK_CACHE: Dict[int, OnChipNetwork] = {}
_DRAM_CACHE: Dict[Tuple[MemoryTechnology, float], DRAMModel] = {}


def _network_for(units: int) -> OnChipNetwork:
    """The on-chip network model for a mapping using ``units`` CU/SpMU pairs."""
    grid_width = max(2, int(round(units**0.5)))
    network = _NETWORK_CACHE.get(grid_width)
    if network is None:
        network = OnChipNetwork(NetworkConfig(grid_width=grid_width))
        _NETWORK_CACHE[grid_width] = network
    return network


def _dram_for(memory: MemoryTechnology, clock_ghz: float) -> DRAMModel:
    """The DRAM model for one (technology, clock) combination."""
    key = (memory, clock_ghz)
    dram = _DRAM_CACHE.get(key)
    if dram is None:
        dram = DRAMModel(memory, clock_ghz=clock_ghz)
        _DRAM_CACHE[key] = dram
    return dram


def platform_throughput_variant(platform: CapstanPlatform) -> SpMUVariant:
    """The SpMU microbenchmark point that calibrates one platform's SRAM.

    Encodes the Table 9 column semantics: the ``"arbitrated"`` allocator
    column is modelled as the arbitrated ordering mode, and any
    non-separable allocator maps to the weak greedy allocator.
    """
    allocator_kind = "separable" if platform.allocator == "separable" else "greedy"
    if platform.allocator == "arbitrated":
        ordering_for_tput = OrderingMode.ARBITRATED
    else:
        ordering_for_tput = platform.ordering
    return SpMUVariant(
        ordering=ordering_for_tput,
        bank_mapping=platform.bank_mapping,
        allocator_kind=allocator_kind,
        config=platform.config.spmu,
        lanes=platform.config.lanes,
    )


def _platform_throughput(platform: CapstanPlatform) -> float:
    """Calibrated SpMU request throughput for one platform (Table 9 inputs)."""
    variant = platform_throughput_variant(platform)
    throughput = effective_bank_throughput(
        ordering=variant.ordering,
        bank_mapping=variant.bank_mapping,
        allocator_kind=variant.allocator_kind,
        config=variant.config,
        lanes=variant.lanes,
    )
    return max(throughput, 1.0)


def estimate_cycles(
    profile: WorkloadProfile, platform: Optional[CapstanPlatform] = None
) -> Tuple[float, StallBreakdown]:
    """Estimate end-to-end cycles and the stall breakdown for one run.

    Args:
        profile: The application's platform-independent execution profile.
        platform: The Capstan configuration to cost it on (defaults to the
            paper's HBM2E design point).

    Returns:
        ``(cycles, breakdown)`` where ``breakdown.total_cycles == cycles``.
    """
    platform = platform or default_platform()
    config = platform.config
    lanes = config.lanes
    units = max(1, min(config.compute_units, profile.outer_parallelism))
    breakdown = StallBreakdown()

    # --- Active: lane-work on a perfectly utilized machine. ---------------- #
    breakdown.active = profile.compute_iterations / (lanes * units)

    # --- Vector length: slots issued minus useful lane-work. ---------------- #
    slot_cycles = profile.vector_slots / units
    breakdown.vector_length = max(0.0, slot_cycles - breakdown.active)

    # --- Scan: scanner overhead beyond what the loop bodies hide. ---------- #
    scan_cycles = profile.scan_cycles / units
    scan_hidden = min(scan_cycles, slot_cycles)
    breakdown.scan = (profile.scan_empty_cycles / units) + max(0.0, scan_cycles - scan_hidden)

    # --- Load/Store: moving data through the datapath with ideal DRAM. ----- #
    streamed_words = profile.total_stream_bytes / 4.0
    breakdown.load_store = streamed_words / (lanes * units)

    # --- Imbalance: uneven tiles stretch the critical path. ---------------- #
    balanced = breakdown.active + breakdown.vector_length + breakdown.scan
    breakdown.imbalance = balanced * profile.imbalance_fraction

    # --- Network: round trips + shuffle serialization of cross-tile traffic. #
    if not platform.ideal_network:
        network = _network_for(units)
        round_trip = network.round_trip_cycles(profile.sequential_rounds)
        cross_requests = profile.cross_tile_request_fraction * profile.sram_random_accesses
        efficiency = _shuffle_efficiency(
            config.shuffle, lanes, profile.cross_tile_request_fraction
        )
        shuffle_cycles = cross_requests / (lanes * units) * (1.0 / efficiency - 1.0)
        pipeline_penalty = 0.0
        if not profile.pipelinable:
            # Un-pipelinable outer iterations also pay the per-iteration
            # pipeline fill latency.
            pipeline_penalty = profile.sequential_rounds * network.average_latency_cycles
        breakdown.network = round_trip + shuffle_cycles + pipeline_penalty

    # --- SRAM: bank conflicts beyond the conflict-free ideal. --------------- #
    banks = config.spmu.banks
    ideal_sram_cycles = profile.sram_random_accesses / (banks * units)
    if platform.ideal_sram:
        sram_cycles = ideal_sram_cycles
    else:
        throughput = _platform_throughput(platform)
        normal_fraction = 1.0 - (
            profile.strided_fraction if platform.bank_mapping == "linear" else 0.0
        )
        strided_fraction = 1.0 - normal_fraction
        accesses = profile.sram_random_accesses
        sram_cycles = (accesses * normal_fraction) / (throughput * units)
        # Power-of-two strides under linear mapping serialize onto one bank.
        sram_cycles += (accesses * strided_fraction) / (1.0 * units)
    breakdown.sram = max(0.0, sram_cycles - min(ideal_sram_cycles, breakdown.active))

    # --- DRAM: bandwidth-limited traffic beyond the ideal-DRAM baseline. ---- #
    if not platform.ideal_memory:
        dram = _dram_for(config.memory, config.clock_ghz)
        stream_read = profile.dram_stream_read_bytes
        if config.compression_enabled and profile.pointer_stream_bytes > 0:
            saved = profile.pointer_stream_bytes * (
                1.0 - 1.0 / max(profile.pointer_compression_ratio, 1.0)
            )
            stream_read = max(0.0, stream_read - saved)
        traffic = TrafficSummary(
            streaming_read_bytes=stream_read,
            streaming_write_bytes=profile.dram_stream_write_bytes,
            random_accesses=profile.dram_random_reads + 2 * profile.dram_random_updates,
        )
        dram_cycles = dram.traffic_cycles(traffic)
        breakdown.dram = max(0.0, dram_cycles - breakdown.load_store)

    return breakdown.total_cycles, breakdown


@dataclass
class BatchCostResult:
    """Vectorized costing of a (profile x platform) grid.

    Attributes:
        cycles: End-to-end cycle estimates, shape
            ``(len(profiles), len(platforms))``; ``cycles[i, j]`` equals
            ``estimate_cycles(profiles[i], platforms[j])[0]`` exactly.
        categories: One array per :data:`~repro.sim.stats.STALL_CATEGORIES`
            entry, each the same shape as ``cycles``.
        energy_mj: Per-cell energy in millijoules (same shape as
            ``cycles``) when the grid was costed with ``energy=True``;
            ``energy_mj[i, j]`` equals
            ``estimate_energy(profiles[i], platforms[j])[0]`` exactly.
            ``None`` otherwise.
        energy_categories: One array per
            :data:`~repro.core.energy.ENERGY_CATEGORIES` entry when
            ``energy=True``, else ``None``.
    """

    cycles: np.ndarray
    categories: Dict[str, np.ndarray]
    energy_mj: Optional[np.ndarray] = None
    energy_categories: Optional[Dict[str, np.ndarray]] = None

    def breakdown(self, profile_index: int, platform_index: int) -> StallBreakdown:
        """The :class:`StallBreakdown` of one grid cell."""
        return StallBreakdown(
            **{
                name: float(self.categories[name][profile_index, platform_index])
                for name in STALL_CATEGORIES
            }
        )


#: Cost-model constant for the budget planner: rough ``float64`` working-set
#: bytes the batched costing model allocates per (profile, platform) grid
#: cell (a few dozen per-pair temporaries plus the result categories).
COSTING_BYTES_PER_CELL = 8 * 40


def _estimate_cycles_batch_columns(
    profiles: Sequence[WorkloadProfile],
    platforms: Sequence[CapstanPlatform],
    energy: bool = False,
) -> BatchCostResult:
    """One unchunked costing pass over a (profile x platform) grid.

    Every term is computed column by column from per-platform scalars
    broadcast against per-profile columns -- no cross-platform reductions
    exist -- so a platform-axis chunk of this pass is bit-identical to the
    corresponding columns of the full pass. That property is what lets
    :func:`iter_cycles_batches` stream a grid under a memory budget.
    """
    platforms = [p or default_platform() for p in platforms]
    n_profiles, n_platforms = len(profiles), len(platforms)
    if n_profiles == 0 or n_platforms == 0:
        empty = {name: np.zeros((n_profiles, n_platforms)) for name in STALL_CATEGORIES}
        result = BatchCostResult(cycles=np.zeros((n_profiles, n_platforms)), categories=empty)
        if energy:
            from ..core.energy import estimate_energy_batch

            energies = estimate_energy_batch(profiles, platforms, result.cycles)
            result.energy_mj = energies.total
            result.energy_categories = energies.categories
        return result

    # --- Stack profile fields into (P, 1) columns. Derived per-profile ------ #
    # scalars use the same Python expressions as the scalar model so their
    # rounding is identical.
    def fcol(values) -> np.ndarray:
        return np.array(values, dtype=np.float64).reshape(n_profiles, 1)

    def icol(values) -> np.ndarray:
        return np.array(values, dtype=np.int64).reshape(n_profiles, 1)

    compute_iterations = icol([p.compute_iterations for p in profiles])
    vector_slots = icol([p.vector_slots for p in profiles])
    scan_busy_cycles = icol([p.scan_cycles for p in profiles])
    scan_empty_cycles = icol([p.scan_empty_cycles for p in profiles])
    streamed_words = fcol([p.total_stream_bytes / 4.0 for p in profiles])
    imbalance_fraction = fcol([p.imbalance_fraction for p in profiles])
    outer_parallelism = icol([p.outer_parallelism for p in profiles])
    sram_accesses = icol([p.sram_random_accesses for p in profiles])
    strided_fraction = fcol([p.strided_fraction for p in profiles])
    cross_requests = fcol(
        [p.cross_tile_request_fraction * p.sram_random_accesses for p in profiles]
    )
    sequential_rounds = icol([p.sequential_rounds for p in profiles])
    pipelinable = np.array([p.pipelinable for p in profiles], dtype=bool).reshape(
        n_profiles, 1
    )
    stream_read_bytes = fcol([p.dram_stream_read_bytes for p in profiles])
    stream_write_bytes = fcol([p.dram_stream_write_bytes for p in profiles])
    dram_accesses = icol(
        [p.dram_random_reads + 2 * p.dram_random_updates for p in profiles]
    )

    def _compressed_stream_read(p: WorkloadProfile) -> float:
        stream_read = p.dram_stream_read_bytes
        if p.pointer_stream_bytes > 0:
            saved = p.pointer_stream_bytes * (
                1.0 - 1.0 / max(p.pointer_compression_ratio, 1.0)
            )
            stream_read = max(0.0, stream_read - saved)
        return stream_read

    compressed_read_bytes = fcol([_compressed_stream_read(p) for p in profiles])

    # --- Stack platform fields into (1, Q) rows. ---------------------------- #
    def frow(values) -> np.ndarray:
        return np.array(values, dtype=np.float64).reshape(1, n_platforms)

    def irow(values) -> np.ndarray:
        return np.array(values, dtype=np.int64).reshape(1, n_platforms)

    def brow(values) -> np.ndarray:
        return np.array(values, dtype=bool).reshape(1, n_platforms)

    lanes = irow([p.config.lanes for p in platforms])
    compute_units = irow([p.config.compute_units for p in platforms])
    banks = irow([p.config.spmu.banks for p in platforms])
    ideal_network = brow([p.ideal_network for p in platforms])
    ideal_sram = brow([p.ideal_sram for p in platforms])
    ideal_memory = brow([p.ideal_memory for p in platforms])
    linear_mapping = brow([p.bank_mapping == "linear" for p in platforms])
    compression = brow([p.config.compression_enabled for p in platforms])
    # Calibrated SpMU throughput per platform (1.0 placeholder when the
    # scalar model would never consult it), resolved in one batched call so
    # a cold sweep simulates all of its SpMU variants in a single lock-step
    # pass and one ThroughputStore transaction.
    needs_throughput = [not p.ideal_sram for p in platforms]
    throughput_values = np.ones(n_platforms)
    if any(needs_throughput):
        batched = effective_bank_throughput_batch(
            [platform_throughput_variant(p) for p, need in zip(platforms, needs_throughput) if need]
        )
        throughput_values[needs_throughput] = np.maximum(batched, 1.0)
    throughput = throughput_values.reshape(1, n_platforms)
    # DRAM denominators: the scalar model divides by (peak * efficiency).
    drams = [_dram_for(p.config.memory, p.config.clock_ghz) for p in platforms]
    stream_denominator = frow(
        [
            d.bytes_per_cycle_peak * STREAM_ACCESS_EFFICIENCY[d.technology]
            for d in drams
        ]
    )
    random_denominator = frow(
        [
            d.bytes_per_cycle_peak * RANDOM_ACCESS_EFFICIENCY[d.technology]
            for d in drams
        ]
    )

    # --- Per-pair matrices, mirroring the scalar model step for step. ------- #
    units = np.maximum(1, np.minimum(compute_units, outer_parallelism))
    lane_units = lanes * units

    active = compute_iterations / lane_units

    slot_cycles = vector_slots / units
    vector_length = np.maximum(0.0, slot_cycles - active)

    scan_busy = scan_busy_cycles / units
    scan_hidden = np.minimum(scan_busy, slot_cycles)
    scan = scan_empty_cycles / units + np.maximum(0.0, scan_busy - scan_hidden)

    load_store = streamed_words / lane_units

    balanced = active + vector_length + scan
    imbalance = balanced * imbalance_fraction

    # Network: the average latency depends on the per-pair unit count; the
    # lookup goes through the same memoized models as the scalar path.
    unique_units = np.unique(units)
    latency_lut = np.array(
        [_network_for(int(u)).average_latency_cycles for u in unique_units]
    )
    average_latency = latency_lut[np.searchsorted(unique_units, units)]
    round_trip = (sequential_rounds * 2.0) * average_latency
    efficiency = np.ones((n_profiles, n_platforms))
    efficiency_columns: Dict[Tuple[ShuffleConfig, int], np.ndarray] = {}
    for j, platform in enumerate(platforms):
        if platform.ideal_network:
            continue
        shuffle_key = (platform.config.shuffle, platform.config.lanes)
        column = efficiency_columns.get(shuffle_key)
        if column is None:
            column = np.array(
                [
                    _shuffle_efficiency(
                        shuffle_key[0], shuffle_key[1], p.cross_tile_request_fraction
                    )
                    for p in profiles
                ]
            )
            efficiency_columns[shuffle_key] = column
        efficiency[:, j] = column
    shuffle_cycles = cross_requests / lane_units * (1.0 / efficiency - 1.0)
    pipeline_penalty = np.where(pipelinable, 0.0, sequential_rounds * average_latency)
    network = np.where(ideal_network, 0.0, round_trip + shuffle_cycles + pipeline_penalty)

    # SRAM: bank conflicts beyond the conflict-free ideal.
    ideal_sram_cycles = sram_accesses / (banks * units)
    normal_fraction = np.where(linear_mapping, 1.0 - strided_fraction, 1.0)
    strided_used = 1.0 - normal_fraction
    conflicted = (sram_accesses * normal_fraction) / (throughput * units) + (
        sram_accesses * strided_used
    ) / (1.0 * units)
    sram_cycles = np.where(ideal_sram, ideal_sram_cycles, conflicted)
    sram = np.maximum(0.0, sram_cycles - np.minimum(ideal_sram_cycles, active))

    # DRAM: bandwidth-limited traffic beyond the ideal-DRAM baseline.
    stream_read = np.where(compression, compressed_read_bytes, stream_read_bytes)
    streaming_cycles = (stream_read + stream_write_bytes) / stream_denominator
    random_cycles = (dram_accesses * BURST_BYTES) / random_denominator
    dram_cycles = streaming_cycles + random_cycles
    dram = np.where(ideal_memory, 0.0, np.maximum(0.0, dram_cycles - load_store))

    categories = {
        "active": active,
        "scan": scan,
        "load_store": load_store,
        "vector_length": vector_length,
        "imbalance": imbalance,
        "network": network,
        "sram": sram,
        "dram": dram,
    }
    # Total in STALL_CATEGORIES order, matching StallBreakdown.total_cycles.
    cycles = np.zeros((n_profiles, n_platforms))
    for name in STALL_CATEGORIES:
        cycles = cycles + categories[name]
    result = BatchCostResult(cycles=cycles, categories=categories)
    if energy:
        # The energy batch is column-independent like the costing batch,
        # so attaching it here keeps chunked passes bit-identical too.
        from ..core.energy import estimate_energy_batch

        energies = estimate_energy_batch(profiles, platforms, cycles)
        result.energy_mj = energies.total
        result.energy_categories = energies.categories
    return result


def iter_cycles_batches(
    profiles: Iterable[WorkloadProfile],
    platforms: Iterable[CapstanPlatform],
    *,
    memory_budget: Union[int, str, None] = None,
    chunk_platforms: Optional[int] = None,
    energy: bool = False,
) -> Iterator[Tuple[List[CapstanPlatform], BatchCostResult]]:
    """Stream a costing grid as (platform chunk, chunk result) pairs.

    The platform axis is cut into chunks sized so one chunk's working set
    (:data:`COSTING_BYTES_PER_CELL` per cell) fits the memory budget; each
    chunk's :class:`BatchCostResult` is bit-identical to the corresponding
    columns of the unchunked grid. ``platforms`` may be any iterable
    (including a generator) and is consumed one chunk at a time; profiles
    are materialized once (they are the small axis).
    """
    profiles = list(profiles)
    budget = resolve_memory_budget(memory_budget)
    if chunk_platforms is None:
        if budget is None:
            chunk = list(platforms)
            yield chunk, _estimate_cycles_batch_columns(profiles, chunk, energy=energy)
            return
        per_platform = max(len(profiles), 1) * COSTING_BYTES_PER_CELL
        chunk_platforms = plan_chunks(0, per_platform, budget).chunk_items
    for chunk in iter_chunked(platforms, chunk_platforms):
        yield chunk, _estimate_cycles_batch_columns(profiles, chunk, energy=energy)


def estimate_cycles_batch(
    profiles: Iterable[WorkloadProfile],
    platforms: Iterable[CapstanPlatform],
    *,
    memory_budget: Union[int, str, None] = None,
    chunk_platforms: Optional[int] = None,
    energy: bool = False,
) -> BatchCostResult:
    """Cost every (profile, platform) pair of a grid in vectorized passes.

    Produces exactly the numbers :func:`estimate_cycles` produces cell by
    cell -- every arithmetic step mirrors the scalar model's operation
    order, and the calibrated sub-models (SpMU throughput, merge
    efficiency, network latency, DRAM parameters) are resolved through the
    same caches -- but stacks the profile fields into numpy arrays so a
    design-space sweep pays Python overhead once per grid instead of once
    per pair. One :class:`~repro.sim.network.OnChipNetwork` /
    :class:`~repro.sim.dram.DRAMModel` instance is reused per distinct
    configuration instead of being rebuilt per call.

    Args:
        profiles: Application profiles (grid rows); any iterable.
        platforms: Capstan configurations to cost them on (grid columns);
            any iterable, consumed lazily when chunking.
        memory_budget: Byte budget for the costing temporaries; the
            platform axis is streamed in budget-sized chunks and the chunk
            columns concatenated (bit-identical to the unchunked pass).
            ``None`` defers to ``REPRO_MEMORY_BUDGET``.
        chunk_platforms: Explicit platform-axis chunk width (overrides the
            cost model; mainly for the equivalence tests).
        energy: Also cost per-cell energy through
            :func:`~repro.core.energy.estimate_energy_batch` (attached as
            ``energy_mj`` / ``energy_categories``).

    Returns:
        A :class:`BatchCostResult` with per-cell cycles and stall categories.
    """
    profiles = list(profiles)
    if chunk_platforms is None and resolve_memory_budget(memory_budget) is None:
        return _estimate_cycles_batch_columns(profiles, list(platforms), energy=energy)
    parts = [
        result
        for _chunk, result in iter_cycles_batches(
            profiles,
            platforms,
            memory_budget=memory_budget,
            chunk_platforms=chunk_platforms,
            energy=energy,
        )
    ]
    if not parts:
        return _estimate_cycles_batch_columns(profiles, [], energy=energy)
    merged = BatchCostResult(
        cycles=np.concatenate([part.cycles for part in parts], axis=1),
        categories={
            name: np.concatenate([part.categories[name] for part in parts], axis=1)
            for name in STALL_CATEGORIES
        },
    )
    if energy:
        from ..core.energy import ENERGY_CATEGORIES

        merged.energy_mj = np.concatenate([part.energy_mj for part in parts], axis=1)
        merged.energy_categories = {
            name: np.concatenate([part.energy_categories[name] for part in parts], axis=1)
            for name in ENERGY_CATEGORIES
        }
    return merged


def run_metrics(
    profile: WorkloadProfile, platform: Optional[CapstanPlatform] = None
) -> RunMetrics:
    """Estimate cycles and wrap them in a :class:`RunMetrics` record."""
    platform = platform or default_platform()
    cycles, breakdown = estimate_cycles(profile, platform)
    return RunMetrics(
        app=profile.app,
        dataset=profile.dataset,
        platform=platform.name,
        cycles=cycles,
        clock_ghz=platform.config.clock_ghz,
        breakdown=breakdown,
        extra=dict(profile.extra),
    )
