"""Sparse matrix-vector multiplication in three formats (Table 2).

The paper evaluates SpMV with CSR, COO, and CSC inputs because each format
exercises a different sparse-iteration behaviour:

* **CSR**: dense iteration over rows, dense iteration over each row's
  stored columns, random *reads* of the input vector, dense reduction into
  the output -- structural hazards when reading on-chip memory.
* **COO**: dense iteration over the non-zero values, random reads of the
  input vector *and* random atomic updates of the output vector -- data
  hazards when modifying memory.
* **CSC**: sparse iteration over the non-zero *input-vector* elements
  (a 30%-dense input vector, following the EIE evaluation), dense iteration
  over the selected columns, random atomic updates of the output.

Each variant runs functionally (validated against ``scipy``) and produces a
:class:`~repro.apps.profile.WorkloadProfile`. Every variant offers two
profiling backends: the default ``vectorized`` backend computes the
counters analytically from the sparse-structure arrays in single numpy
passes, while ``reference`` keeps the original per-element loops; both
produce identical profiles (asserted by the backend-equivalence tests).
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..formats.convert import to_csc, to_csr
from ..formats.coo import COOMatrix
from ..formats.csc import CSCMatrix
from ..formats.csr import CSRMatrix
from ..runtime.registry import RunContext, register_app
from ..workloads import LINEAR_ALGEBRA_DATASET_NAMES, load_dataset, sparse_vector
from .common import (
    BACKEND_REFERENCE,
    AppRun,
    check_backend,
    cross_tile_fraction_rows,
    cross_tile_fraction_rows_batch,
    expand_slices,
    tile_rows_by_nnz,
    tile_work_from_partition,
)
from .profile import WorkloadProfile, vector_slots_batch, vector_slots_for
from .scan_model import scan_cost_single

#: Default outer parallelism: the paper maps applications across the grid's
#: CU/SpMU pairs; 16 outer-parallel pipelines is the common mapping.
DEFAULT_OUTER_PARALLELISM = 16


def _csr_matvec(matrix: CSRMatrix, vector: np.ndarray) -> np.ndarray:
    """Vectorized CSR ``M @ v`` (segment sums over the stored entries)."""
    rows = matrix.shape[0]
    if not matrix.nnz:
        return np.zeros(rows, dtype=np.float64)
    row_ids = np.repeat(np.arange(rows, dtype=np.int64), matrix.row_lengths())
    products = matrix.values * vector[matrix.col_indices]
    return np.bincount(row_ids, weights=products, minlength=rows)


def spmv_csr(
    matrix: CSRMatrix,
    vector: np.ndarray,
    dataset: str = "synthetic",
    outer_parallelism: int = DEFAULT_OUTER_PARALLELISM,
    backend: str = "vectorized",
) -> AppRun:
    """CSR SpMV: ``out[r] = sum_c M[r][c] * v[c]``.

    Args:
        matrix: The sparse matrix in CSR form.
        vector: Dense input vector of length ``matrix.shape[1]``.
        dataset: Dataset label recorded in the profile.
        outer_parallelism: CU/SpMU pairs the mapping spreads rows across.
        backend: ``"vectorized"`` (batch kernels) or ``"reference"`` (loops).
    """
    check_backend(backend)
    vector = np.asarray(vector, dtype=np.float64)
    if vector.shape != (matrix.shape[1],):
        raise WorkloadError("vector length must match matrix columns")
    rows = matrix.shape[0]
    row_lengths = matrix.row_lengths()
    col_indices = matrix.col_indices
    partitioning = tile_rows_by_nnz(matrix, outer_parallelism)

    if backend == BACKEND_REFERENCE:
        output = np.zeros(rows, dtype=np.float64)
        row_pointers = matrix.row_pointers
        values = matrix.values
        for row in range(rows):
            start, end = row_pointers[row], row_pointers[row + 1]
            cols = col_indices[start:end]
            output[row] = float(np.dot(values[start:end], vector[cols]))
        vector_slots = vector_slots_for(row_lengths.tolist())
        cross_fraction = cross_tile_fraction_rows(matrix, partitioning)
    else:
        output = _csr_matvec(matrix, vector)
        vector_slots = vector_slots_batch(row_lengths)
        cross_fraction = cross_tile_fraction_rows_batch(matrix, partitioning)

    nnz = matrix.nnz
    profile = WorkloadProfile(
        app="spmv-csr",
        dataset=dataset,
        compute_iterations=nnz,
        vector_slots=vector_slots,
        sram_random_reads=nnz,  # one input-vector gather per stored entry
        sram_random_updates=0,
        dram_stream_read_bytes=4.0 * (nnz * 2 + rows + 1 + vector.size),
        dram_stream_write_bytes=4.0 * rows,
        pointer_stream_bytes=4.0 * (nnz + rows + 1),
        pointer_compression_ratio=_pointer_compression(col_indices),
        tile_work=tile_work_from_partition(partitioning),
        cross_tile_request_fraction=cross_fraction,
        pipelinable=True,
        outer_parallelism=outer_parallelism,
        extra={"nnz": float(nnz), "rows": float(rows)},
    )
    return AppRun(output=output, profile=profile)


def spmv_coo(
    matrix: COOMatrix,
    vector: np.ndarray,
    dataset: str = "synthetic",
    outer_parallelism: int = DEFAULT_OUTER_PARALLELISM,
    backend: str = "vectorized",
) -> AppRun:
    """COO SpMV: iterate stored values, atomically accumulate the output.

    The COO kernel's counters were always computed analytically from the
    triplet arrays, so both backends share one implementation.
    """
    check_backend(backend)
    vector = np.asarray(vector, dtype=np.float64)
    if vector.shape != (matrix.shape[1],):
        raise WorkloadError("vector length must match matrix columns")
    rows, cols, values = matrix.rows, matrix.cols, matrix.values
    output = np.zeros(matrix.shape[0], dtype=np.float64)
    # Atomic accumulation: functionally an unordered scatter-add.
    np.add.at(output, rows, values * vector[cols])

    nnz = matrix.nnz
    tiles = outer_parallelism
    tile_work = np.bincount(np.arange(nnz) % tiles, minlength=tiles).astype(float).tolist()
    # Output rows are distributed across tiles; an update whose target row
    # lives in another tile crosses the shuffle network.
    rows_per_tile = max(1, matrix.shape[0] // tiles)
    owner_of_update = np.minimum(rows // rows_per_tile, tiles - 1)
    issuing_tile = np.arange(nnz) % tiles
    cross_fraction = float(np.count_nonzero(owner_of_update != issuing_tile)) / max(1, nnz)

    profile = WorkloadProfile(
        app="spmv-coo",
        dataset=dataset,
        compute_iterations=nnz,
        vector_slots=vector_slots_for([nnz]),
        sram_random_reads=nnz,
        sram_random_updates=nnz,
        dram_stream_read_bytes=4.0 * (3 * nnz + vector.size),
        dram_stream_write_bytes=4.0 * matrix.shape[0],
        pointer_stream_bytes=4.0 * 2 * nnz,
        pointer_compression_ratio=_pointer_compression(np.concatenate([rows, cols])),
        tile_work=tile_work,
        cross_tile_request_fraction=cross_fraction,
        pipelinable=True,
        outer_parallelism=outer_parallelism,
        extra={"nnz": float(nnz)},
    )
    return AppRun(output=output, profile=profile)


def spmv_csc(
    matrix: CSCMatrix,
    vector: np.ndarray,
    dataset: str = "synthetic",
    outer_parallelism: int = DEFAULT_OUTER_PARALLELISM,
    backend: str = "vectorized",
) -> AppRun:
    """CSC SpMV: skip columns whose input element is zero (sparse input).

    The input vector is expected to be sparse (the paper uses 30% density);
    only the columns selected by its non-zeros are traversed.
    """
    check_backend(backend)
    vector = np.asarray(vector, dtype=np.float64)
    if vector.shape != (matrix.shape[1],):
        raise WorkloadError("vector length must match matrix columns")
    nonzero_inputs = np.nonzero(vector)[0]
    col_lengths = matrix.col_lengths()
    tiles = outer_parallelism
    rows_per_tile = max(1, matrix.shape[0] // tiles)

    if backend == BACKEND_REFERENCE:
        output = np.zeros(matrix.shape[0], dtype=np.float64)
        touched_nnz = 0
        trip_counts = []
        for col in nonzero_inputs.tolist():
            rows_in_col, col_values = matrix.col_slice(col)
            np.add.at(output, rows_in_col, col_values * vector[col])
            touched_nnz += rows_in_col.size
            trip_counts.append(int(rows_in_col.size))
        vector_slots = vector_slots_for(trip_counts)
        work = np.zeros(tiles, dtype=np.float64)
        for i, col in enumerate(nonzero_inputs.tolist()):
            work[i % tiles] += max(1, col_lengths[col])
        cross = 0
        for i, col in enumerate(nonzero_inputs.tolist()):
            rows_in_col, _ = matrix.col_slice(col)
            cross += int(np.count_nonzero(
                np.minimum(rows_in_col // rows_per_tile, tiles - 1) != (i % tiles)
            ))
    else:
        flat, lengths = expand_slices(matrix.col_pointers, nonzero_inputs)
        touched_rows = matrix.row_indices[flat]
        scaled = matrix.values[flat] * np.repeat(vector[nonzero_inputs], lengths)
        output = np.bincount(touched_rows, weights=scaled, minlength=matrix.shape[0])
        touched_nnz = int(lengths.sum())
        vector_slots = vector_slots_batch(lengths)
        issuing_tile = np.arange(nonzero_inputs.size, dtype=np.int64) % tiles
        work = np.bincount(
            issuing_tile, weights=np.maximum(1, lengths), minlength=tiles
        ).astype(np.float64)
        owner = np.minimum(touched_rows // rows_per_tile, tiles - 1)
        cross = int(np.count_nonzero(owner != np.repeat(issuing_tile, lengths)))

    cross_fraction = cross / max(1, touched_nnz)
    scan = scan_cost_single(nonzero_inputs, vector.size)
    profile = WorkloadProfile(
        app="spmv-csc",
        dataset=dataset,
        compute_iterations=touched_nnz,
        vector_slots=vector_slots,
        scan_cycles=scan.cycles,
        scan_empty_cycles=scan.empty_cycles,
        scan_elements=scan.elements,
        sram_random_reads=0,
        sram_random_updates=touched_nnz,
        dram_stream_read_bytes=4.0
        * (2 * touched_nnz + nonzero_inputs.size + vector.size // 32 + 1),
        dram_stream_write_bytes=4.0 * matrix.shape[0],
        pointer_stream_bytes=4.0 * touched_nnz,
        pointer_compression_ratio=_pointer_compression(matrix.row_indices),
        tile_work=work.tolist(),
        cross_tile_request_fraction=cross_fraction,
        pipelinable=True,
        outer_parallelism=outer_parallelism,
        extra={"touched_nnz": float(touched_nnz), "input_nnz": float(nonzero_inputs.size)},
    )
    return AppRun(output=output, profile=profile)


def reference_spmv(matrix, vector: np.ndarray) -> np.ndarray:
    """Dense reference ``M @ v`` used to validate all three variants."""
    dense = matrix.to_dense()
    return dense @ np.asarray(vector, dtype=np.float64)


def _pointer_compression(pointers: np.ndarray) -> float:
    """Base/offset compression ratio of a pointer stream (sampled).

    Uses the first 64K pointers to bound the cost on large inputs; the
    ratio converges quickly because packets are only 16 words long. Both
    profiling backends share this helper (the report-only reduction is
    bit-identical to encoding the packets and measuring them).
    """
    from ..core.compression import compression_report

    sample = np.asarray(pointers, dtype=np.int64)[:65536]
    if sample.size == 0:
        return 1.0
    return max(1.0, compression_report(sample).ratio)


# --------------------------------------------------------------------------- #
# Experiment-registry specs (Table 6 pairings, Table 12 order)
# --------------------------------------------------------------------------- #

def _dense_input_vector(length: int) -> np.ndarray:
    """The evaluation's dense SpMV input: strictly positive, fixed seed."""
    rng = np.random.default_rng(17)
    return rng.random(length) + 0.1


@register_app(
    "spmv-csr",
    datasets=LINEAR_ALGEBRA_DATASET_NAMES,
    run=spmv_csr,
    order=10,
    context_fields=("scale",),
)
def _prepare_spmv_csr(dataset: str, context: RunContext) -> dict:
    """CSR SpMV inputs: the scaled matrix and a dense random vector."""
    generated = load_dataset(dataset, scale=context.scale)
    csr = to_csr(generated.matrix)
    return {
        "matrix": csr,
        "vector": _dense_input_vector(csr.shape[1]),
        "dataset": generated.name,
    }


@register_app(
    "spmv-coo",
    datasets=LINEAR_ALGEBRA_DATASET_NAMES,
    run=spmv_coo,
    order=20,
    context_fields=("scale",),
)
def _prepare_spmv_coo(dataset: str, context: RunContext) -> dict:
    """COO SpMV inputs: the raw COO matrix and a dense random vector."""
    generated = load_dataset(dataset, scale=context.scale)
    return {
        "matrix": generated.matrix,
        "vector": _dense_input_vector(generated.matrix.shape[1]),
        "dataset": generated.name,
    }


@register_app(
    "spmv-csc",
    datasets=LINEAR_ALGEBRA_DATASET_NAMES,
    run=spmv_csc,
    order=30,
    context_fields=("scale",),
)
def _prepare_spmv_csc(dataset: str, context: RunContext) -> dict:
    """CSC SpMV inputs: a 30%-dense sparse input vector (EIE-style)."""
    generated = load_dataset(dataset, scale=context.scale)
    csc = to_csc(generated.matrix)
    vector = sparse_vector(csc.shape[1], density=0.30, seed=23)
    return {"matrix": csc, "vector": vector, "dataset": generated.name}
