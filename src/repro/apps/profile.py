"""Workload profiles: what an application run did, independent of timing.

Every application in :mod:`repro.apps` executes functionally (producing a
numerically verifiable result) while counting the quantities the paper's
performance analysis depends on: useful loop-body iterations, scanner
activity, random on-chip accesses, atomic DRAM updates, streaming DRAM
traffic, per-tile work distribution, and cross-tile communication. The
resulting :class:`WorkloadProfile` is the single interface between the
applications and the platform timing models (Capstan, Plasticine, CPU,
GPU), so one functional run can be re-costed on every platform and under
every sensitivity-study variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass
class WorkloadProfile:
    """Platform-independent execution profile of one application run.

    Attributes:
        app: Application name (e.g. ``"spmv-csr"``).
        dataset: Dataset name.
        compute_iterations: Useful innermost loop-body iterations (the
            lane-work the Active category counts).
        vector_slots: Vectorized issue slots consumed at 16 lanes, i.e.
            ``sum(ceil(trip / 16))`` over innermost loop instances.
        scan_cycles: Scanner-busy cycles with the default 256/16 scanner.
        scan_empty_cycles: Scanner cycles spent on all-zero chunks.
        scan_elements: Elements emitted by scanners.
        sram_random_reads: Random on-chip reads (element granularity).
        sram_random_updates: Random on-chip read-modify-writes.
        strided_fraction: Fraction of on-chip random accesses that follow a
            power-of-two stride (pathological for linear bank mapping).
        dram_random_reads: Random DRAM element reads (gathers).
        dram_random_updates: Atomic DRAM element updates.
        dram_stream_read_bytes: Sequentially streamed DRAM read bytes.
        dram_stream_write_bytes: Sequentially streamed DRAM write bytes.
        pointer_stream_bytes: Subset of the streamed read bytes that is
            compressible pointer data.
        pointer_compression_ratio: Measured base/offset compression ratio
            for those pointer bytes.
        tile_work: Relative work per outer-parallel tile (imbalance source).
        cross_tile_request_fraction: Fraction of random on-chip accesses
            that target a different tile than the one issuing them.
        sequential_rounds: Un-pipelinable global iterations (BFS levels,
            SSSP rounds, solver iterations) that pay network round trips.
        pipelinable: Whether successive outer iterations can be pipelined.
        outer_parallelism: Number of CU/SpMU pairs the mapping uses.
        extra: Free-form per-app metrics (for reports and tests).
    """

    app: str
    dataset: str
    compute_iterations: int = 0
    vector_slots: int = 0
    scan_cycles: int = 0
    scan_empty_cycles: int = 0
    scan_elements: int = 0
    sram_random_reads: int = 0
    sram_random_updates: int = 0
    strided_fraction: float = 0.0
    dram_random_reads: int = 0
    dram_random_updates: int = 0
    dram_stream_read_bytes: float = 0.0
    dram_stream_write_bytes: float = 0.0
    pointer_stream_bytes: float = 0.0
    pointer_compression_ratio: float = 1.0
    tile_work: List[float] = field(default_factory=list)
    cross_tile_request_fraction: float = 0.0
    sequential_rounds: int = 0
    pipelinable: bool = True
    outer_parallelism: int = 16
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def sram_random_accesses(self) -> int:
        """All random on-chip accesses (reads plus updates)."""
        return self.sram_random_reads + self.sram_random_updates

    @property
    def dram_random_accesses(self) -> int:
        """All random DRAM element accesses (reads plus updates)."""
        return self.dram_random_reads + self.dram_random_updates

    @property
    def total_stream_bytes(self) -> float:
        """All streaming DRAM traffic in bytes."""
        return self.dram_stream_read_bytes + self.dram_stream_write_bytes

    @property
    def imbalance_fraction(self) -> float:
        """Extra critical-path work from uneven tiles (0 = balanced)."""
        if not self.tile_work:
            return 0.0
        mean = sum(self.tile_work) / len(self.tile_work)
        if mean <= 0:
            return 0.0
        return max(0.0, max(self.tile_work) / mean - 1.0)

    def merge(self, other: "WorkloadProfile") -> "WorkloadProfile":
        """Combine two profiles (e.g. phases of a fused kernel).

        Tile work is concatenated per-index (element-wise sum when lengths
        match, otherwise appended), and fractions are recombined weighted by
        their access counts.
        """
        merged_tiles: List[float]
        if len(self.tile_work) == len(other.tile_work) and self.tile_work:
            merged_tiles = [a + b for a, b in zip(self.tile_work, other.tile_work)]
        else:
            merged_tiles = list(self.tile_work) + list(other.tile_work)
        self_random = self.sram_random_accesses
        other_random = other.sram_random_accesses
        total_random = self_random + other_random
        if total_random:
            cross = (
                self.cross_tile_request_fraction * self_random
                + other.cross_tile_request_fraction * other_random
            ) / total_random
            strided = (
                self.strided_fraction * self_random + other.strided_fraction * other_random
            ) / total_random
        else:
            cross = 0.0
            strided = 0.0
        pointer_bytes = self.pointer_stream_bytes + other.pointer_stream_bytes
        if pointer_bytes:
            compression = (
                self.pointer_compression_ratio * self.pointer_stream_bytes
                + other.pointer_compression_ratio * other.pointer_stream_bytes
            ) / pointer_bytes
        else:
            compression = 1.0
        extra = dict(self.extra)
        extra.update(other.extra)
        return WorkloadProfile(
            app=self.app,
            dataset=self.dataset,
            compute_iterations=self.compute_iterations + other.compute_iterations,
            vector_slots=self.vector_slots + other.vector_slots,
            scan_cycles=self.scan_cycles + other.scan_cycles,
            scan_empty_cycles=self.scan_empty_cycles + other.scan_empty_cycles,
            scan_elements=self.scan_elements + other.scan_elements,
            sram_random_reads=self.sram_random_reads + other.sram_random_reads,
            sram_random_updates=self.sram_random_updates + other.sram_random_updates,
            strided_fraction=strided,
            dram_random_reads=self.dram_random_reads + other.dram_random_reads,
            dram_random_updates=self.dram_random_updates + other.dram_random_updates,
            dram_stream_read_bytes=self.dram_stream_read_bytes + other.dram_stream_read_bytes,
            dram_stream_write_bytes=self.dram_stream_write_bytes + other.dram_stream_write_bytes,
            pointer_stream_bytes=pointer_bytes,
            pointer_compression_ratio=compression,
            tile_work=merged_tiles,
            cross_tile_request_fraction=cross,
            sequential_rounds=self.sequential_rounds + other.sequential_rounds,
            pipelinable=self.pipelinable and other.pipelinable,
            outer_parallelism=max(self.outer_parallelism, other.outer_parallelism),
            extra=extra,
        )


def vector_slots_for(trip_counts: List[int], lanes: int = 16) -> int:
    """Vector issue slots for a list of innermost trip counts."""
    slots = 0
    for trip in trip_counts:
        slots += max(1, (trip + lanes - 1) // lanes) if trip else 1
    return slots


def vector_slots_batch(trip_counts, lanes: int = 16) -> int:
    """Batch form of :func:`vector_slots_for` over an integer array.

    Every loop instance consumes at least one issue slot (a zero-trip loop
    still issues), so the per-instance cost is ``max(1, ceil(trip/lanes))``.
    """
    trips = np.asarray(trip_counts, dtype=np.int64)
    if trips.size == 0:
        return 0
    return int(np.maximum(1, (trips + lanes - 1) // lanes).sum())
