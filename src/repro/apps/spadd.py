"""Sparse matrix addition (M+M, Table 2).

M+M adds two CSR matrices row by row. On Capstan each row pair is a
sparse-sparse *union* iteration over the two rows' occupancy, implemented
with bit-tree operands because the evaluated matrices are extremely sparse
(well under 1% density): the bit-tree's top-level pass skips empty 512-bit
tiles so vectorization survives the sparsity (Section 2.3).

The output row's length is produced by a reduction over the union count and
prefix-summed into row pointers (``C[r].end = reduced + C[r-1].end``).
"""

from __future__ import annotations

import numpy as np

from ..core.scanner import ScanMode
from ..errors import WorkloadError
from ..formats.csr import CSRMatrix
from ..formats.convert import to_csr
from ..runtime.registry import RunContext, register_app
from .common import (
    BACKEND_REFERENCE,
    AppRun,
    check_backend,
    tile_rows_by_nnz,
    tile_work_from_partition,
)
from ..workloads import LINEAR_ALGEBRA_DATASET_NAMES, load_dataset
from .profile import WorkloadProfile, vector_slots_batch, vector_slots_for
from .scan_model import scan_cost_pair, scan_cost_rows, zero_cost
from .spmv import DEFAULT_OUTER_PARALLELISM, _pointer_compression


def sparse_add(
    matrix_a: CSRMatrix,
    matrix_b: CSRMatrix,
    dataset: str = "synthetic",
    outer_parallelism: int = DEFAULT_OUTER_PARALLELISM,
    use_bittree: bool = True,
    backend: str = "vectorized",
) -> AppRun:
    """Compute ``C = A + B`` with row-wise sparse-sparse union iteration.

    Args:
        matrix_a: Left operand in CSR form.
        matrix_b: Right operand (same shape) in CSR form.
        dataset: Dataset label for the profile.
        outer_parallelism: CU/SpMU pairs rows are spread across.
        use_bittree: Use bit-tree scanning (the paper's choice for these
            very sparse matrices); ``False`` scans flat bit-vectors.
        backend: ``"vectorized"`` (batch kernels) or ``"reference"`` (loops).

    Returns:
        An :class:`AppRun` whose output is the sum in CSR form (dense
        materialization of the published full-size operands would not
        fit in memory); the profile captures the sparse-iteration work.
    """
    check_backend(backend)
    if matrix_a.shape != matrix_b.shape:
        raise WorkloadError("operands must have the same shape")
    rows, cols = matrix_a.shape
    a_cols, b_cols = matrix_a.col_indices, matrix_b.col_indices

    if backend == BACKEND_REFERENCE:
        output, union_row_sizes, scan_total, output_nnz = _add_reference(
            matrix_a, matrix_b, use_bittree
        )
        union_iterations = int(sum(union_row_sizes))
        vector_slots = vector_slots_for(list(union_row_sizes))
    else:
        # The union of the two row structures is exactly the structure of
        # A + B; one global (row, col) dedup yields every per-row union.
        row_ids = np.concatenate(
            (
                np.repeat(np.arange(rows, dtype=np.int64), matrix_a.row_lengths()),
                np.repeat(np.arange(rows, dtype=np.int64), matrix_b.row_lengths()),
            )
        )
        keys = row_ids * cols + np.concatenate((a_cols, b_cols))
        union_keys, inverse = np.unique(keys, return_inverse=True)
        summed = np.bincount(
            inverse,
            weights=np.concatenate((matrix_a.values, matrix_b.values)),
            minlength=union_keys.size,
        )
        union_rows = union_keys // cols
        union_cols = union_keys % cols
        union_row_sizes = np.bincount(union_rows, minlength=rows)
        scan_total = scan_cost_rows(
            union_rows, union_cols, rows, cols, bittree=use_bittree
        )
        row_pointers = np.zeros(rows + 1, dtype=np.int64)
        row_pointers[1:] = np.cumsum(union_row_sizes)
        output = CSRMatrix((rows, cols), row_pointers, union_cols, summed)
        output_nnz = int(union_keys.size)
        union_iterations = int(union_row_sizes.sum())
        vector_slots = vector_slots_batch(union_row_sizes)

    partitioning = tile_rows_by_nnz(matrix_a, outer_parallelism)
    profile = WorkloadProfile(
        app="spadd",
        dataset=dataset,
        compute_iterations=union_iterations,
        vector_slots=vector_slots,
        scan_cycles=scan_total.cycles,
        scan_empty_cycles=scan_total.empty_cycles,
        scan_elements=scan_total.elements,
        sram_random_reads=matrix_a.nnz + matrix_b.nnz,
        sram_random_updates=output_nnz,
        dram_stream_read_bytes=4.0 * 2 * (matrix_a.nnz + matrix_b.nnz + rows + 1),
        dram_stream_write_bytes=4.0 * (2 * output_nnz + rows + 1),
        pointer_stream_bytes=4.0 * (matrix_a.nnz + matrix_b.nnz),
        pointer_compression_ratio=_pointer_compression(np.concatenate([a_cols, b_cols])),
        tile_work=tile_work_from_partition(partitioning),
        cross_tile_request_fraction=0.0,  # rows are processed entirely locally
        pipelinable=True,
        outer_parallelism=outer_parallelism,
        extra={"output_nnz": float(output_nnz), "union_iterations": float(union_iterations)},
    )
    return AppRun(output=output, profile=profile)


def _add_reference(matrix_a: CSRMatrix, matrix_b: CSRMatrix, use_bittree: bool):
    """The original per-row union loop (reference profiling backend)."""
    rows, cols = matrix_a.shape
    result_rows = []
    result_cols = []
    result_vals = []
    union_sizes = []
    scan_total = zero_cost()
    a_pointers, a_cols, a_vals = matrix_a.row_pointers, matrix_a.col_indices, matrix_a.values
    b_pointers, b_cols, b_vals = matrix_b.row_pointers, matrix_b.col_indices, matrix_b.values

    for row in range(rows):
        a_start, a_end = a_pointers[row], a_pointers[row + 1]
        b_start, b_end = b_pointers[row], b_pointers[row + 1]
        cols_a = a_cols[a_start:a_end]
        cols_b = b_cols[b_start:b_end]
        union = np.union1d(cols_a, cols_b)
        union_sizes.append(int(union.size))
        scan_total = scan_total.merge(
            scan_cost_pair(cols_a, cols_b, cols, ScanMode.UNION, bittree=use_bittree)
        )
        if not union.size:
            continue
        row_values = np.zeros(union.size, dtype=np.float64)
        if cols_a.size:
            row_values[np.searchsorted(union, cols_a)] += a_vals[a_start:a_end]
        if cols_b.size:
            row_values[np.searchsorted(union, cols_b)] += b_vals[b_start:b_end]
        result_rows.extend([row] * union.size)
        result_cols.extend(union.tolist())
        result_vals.extend(row_values.tolist())

    row_pointers = np.zeros(rows + 1, dtype=np.int64)
    row_pointers[1:] = np.cumsum(np.asarray(union_sizes, dtype=np.int64))
    output = CSRMatrix(
        (rows, cols),
        row_pointers,
        np.asarray(result_cols, dtype=np.int64),
        np.asarray(result_vals, dtype=np.float64),
    )
    return output, union_sizes, scan_total, len(result_vals)


def reference_add(matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> np.ndarray:
    """Dense reference sum used for validation."""
    return matrix_a.to_dense() + matrix_b.to_dense()


@register_app(
    "spadd",
    datasets=LINEAR_ALGEBRA_DATASET_NAMES,
    run=sparse_add,
    order=90,
    context_fields=("scale",),
)
def _prepare_spadd(dataset: str, context: RunContext) -> dict:
    """M+M inputs: the dataset plus a reseeded generation of the same spec."""
    generated = load_dataset(dataset, scale=context.scale)
    second = load_dataset(dataset, scale=context.scale, seed=29)
    return {
        "matrix_a": to_csr(generated.matrix),
        "matrix_b": to_csr(second.matrix),
        "dataset": generated.name,
    }
