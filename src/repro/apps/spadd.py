"""Sparse matrix addition (M+M, Table 2).

M+M adds two CSR matrices row by row. On Capstan each row pair is a
sparse-sparse *union* iteration over the two rows' occupancy, implemented
with bit-tree operands because the evaluated matrices are extremely sparse
(well under 1% density): the bit-tree's top-level pass skips empty 512-bit
tiles so vectorization survives the sparsity (Section 2.3).

The output row's length is produced by a reduction over the union count and
prefix-summed into row pointers (``C[r].end = reduced + C[r-1].end``).
"""

from __future__ import annotations

import numpy as np

from ..core.scanner import ScanMode
from ..errors import WorkloadError
from ..formats.csr import CSRMatrix
from ..formats.convert import to_csr
from ..runtime.registry import RunContext, register_app
from ..workloads import LINEAR_ALGEBRA_DATASET_NAMES, load_dataset
from .common import AppRun, tile_rows_by_nnz, tile_work_from_partition
from .profile import WorkloadProfile, vector_slots_for
from .scan_model import scan_cost_pair, zero_cost
from .spmv import DEFAULT_OUTER_PARALLELISM, _pointer_compression


def sparse_add(
    matrix_a: CSRMatrix,
    matrix_b: CSRMatrix,
    dataset: str = "synthetic",
    outer_parallelism: int = DEFAULT_OUTER_PARALLELISM,
    use_bittree: bool = True,
) -> AppRun:
    """Compute ``C = A + B`` with row-wise sparse-sparse union iteration.

    Args:
        matrix_a: Left operand in CSR form.
        matrix_b: Right operand (same shape) in CSR form.
        dataset: Dataset label for the profile.
        outer_parallelism: CU/SpMU pairs rows are spread across.
        use_bittree: Use bit-tree scanning (the paper's choice for these
            very sparse matrices); ``False`` scans flat bit-vectors.

    Returns:
        An :class:`AppRun` whose output is the dense sum (for validation);
        the profile captures the sparse-iteration work.
    """
    if matrix_a.shape != matrix_b.shape:
        raise WorkloadError("operands must have the same shape")
    rows, cols = matrix_a.shape

    result_rows = []
    result_cols = []
    result_vals = []
    union_sizes = []
    scan_total = zero_cost()
    a_pointers, a_cols, a_vals = matrix_a.row_pointers, matrix_a.col_indices, matrix_a.values
    b_pointers, b_cols, b_vals = matrix_b.row_pointers, matrix_b.col_indices, matrix_b.values

    for row in range(rows):
        a_start, a_end = a_pointers[row], a_pointers[row + 1]
        b_start, b_end = b_pointers[row], b_pointers[row + 1]
        cols_a = a_cols[a_start:a_end]
        cols_b = b_cols[b_start:b_end]
        union = np.union1d(cols_a, cols_b)
        union_sizes.append(int(union.size))
        scan_total = scan_total.merge(
            scan_cost_pair(cols_a, cols_b, cols, ScanMode.UNION, bittree=use_bittree)
        )
        if not union.size:
            continue
        row_values = np.zeros(union.size, dtype=np.float64)
        if cols_a.size:
            row_values[np.searchsorted(union, cols_a)] += a_vals[a_start:a_end]
        if cols_b.size:
            row_values[np.searchsorted(union, cols_b)] += b_vals[b_start:b_end]
        result_rows.extend([row] * union.size)
        result_cols.extend(union.tolist())
        result_vals.extend(row_values.tolist())

    output = np.zeros((rows, cols), dtype=np.float64)
    if result_rows:
        output[np.asarray(result_rows), np.asarray(result_cols)] = np.asarray(result_vals)

    output_nnz = len(result_vals)
    partitioning = tile_rows_by_nnz(matrix_a, outer_parallelism)
    profile = WorkloadProfile(
        app="spadd",
        dataset=dataset,
        compute_iterations=sum(union_sizes),
        vector_slots=vector_slots_for(union_sizes),
        scan_cycles=scan_total.cycles,
        scan_empty_cycles=scan_total.empty_cycles,
        scan_elements=scan_total.elements,
        sram_random_reads=matrix_a.nnz + matrix_b.nnz,
        sram_random_updates=output_nnz,
        dram_stream_read_bytes=4.0 * 2 * (matrix_a.nnz + matrix_b.nnz + rows + 1),
        dram_stream_write_bytes=4.0 * (2 * output_nnz + rows + 1),
        pointer_stream_bytes=4.0 * (matrix_a.nnz + matrix_b.nnz),
        pointer_compression_ratio=_pointer_compression(np.concatenate([a_cols, b_cols])),
        tile_work=tile_work_from_partition(partitioning),
        cross_tile_request_fraction=0.0,  # rows are processed entirely locally
        pipelinable=True,
        outer_parallelism=outer_parallelism,
        extra={"output_nnz": float(output_nnz), "union_iterations": float(sum(union_sizes))},
    )
    return AppRun(output=output, profile=profile)


def reference_add(matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> np.ndarray:
    """Dense reference sum used for validation."""
    return matrix_a.to_dense() + matrix_b.to_dense()


@register_app(
    "spadd",
    datasets=LINEAR_ALGEBRA_DATASET_NAMES,
    run=sparse_add,
    order=90,
    context_fields=("scale",),
)
def _prepare_spadd(dataset: str, context: RunContext) -> dict:
    """M+M inputs: the dataset plus a reseeded generation of the same spec."""
    generated = load_dataset(dataset, scale=context.scale)
    second = load_dataset(dataset, scale=context.scale, seed=29)
    return {
        "matrix_a": to_csr(generated.matrix),
        "matrix_b": to_csr(second.matrix),
        "dataset": generated.name,
    }
