"""PageRank in pull and edge-centric variants (Table 2).

* **PR-Pull** iterates destination vertices (matrix rows of the transposed
  adjacency), pulling rank from in-neighbours -- the CSR SpMV pattern. Many
  real vertices have few in-edges, so pull suffers vector-length
  under-utilization (Figure 7).
* **PR-Edge** iterates edges (COO), scattering rank contributions to
  destination vertices with atomic updates -- including sparse DRAM updates
  when the rank vector does not fit on chip. Power-law datasets concentrate
  updates on a few hot vertices, which shows up as SRAM conflicts.

Both variants are validated against a dense-power-iteration reference.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..runtime.registry import RunContext, register_app
from ..workloads import GRAPH_DATASET_NAMES, load_dataset
from .common import (
    BACKEND_REFERENCE,
    AppRun,
    check_backend,
    cross_tile_fraction_rows,
    cross_tile_fraction_rows_batch,
    tile_rows_by_nnz,
    tile_work_from_partition,
)
from .profile import WorkloadProfile, vector_slots_batch, vector_slots_for
from .spmv import DEFAULT_OUTER_PARALLELISM, _pointer_compression

#: Damping factor used by every PageRank variant.
DAMPING = 0.85


def _out_degrees(adjacency: COOMatrix) -> np.ndarray:
    """Out-degree of each vertex (minimum 1 to avoid division by zero)."""
    degrees = np.zeros(adjacency.shape[0], dtype=np.float64)
    np.add.at(degrees, adjacency.rows, 1.0)
    return np.maximum(degrees, 1.0)


def pagerank_pull(
    adjacency: COOMatrix,
    iterations: int = 3,
    dataset: str = "synthetic",
    outer_parallelism: int = DEFAULT_OUTER_PARALLELISM,
    backend: str = "vectorized",
) -> AppRun:
    """Pull-based PageRank: for each vertex, sum rank from its in-neighbours.

    Args:
        adjacency: Directed graph as a COO adjacency matrix (``src -> dst``).
        iterations: Power iterations to run (the paper measures steady-state
            per-iteration throughput; a few iterations suffice).
        dataset: Dataset label for the profile.
        outer_parallelism: CU/SpMU pairs vertices are spread across.
        backend: ``"vectorized"`` (batch kernels) or ``"reference"`` (loops).
    """
    check_backend(backend)
    if iterations <= 0:
        raise WorkloadError("iterations must be positive")
    n = adjacency.shape[0]
    if adjacency.shape[0] != adjacency.shape[1]:
        raise WorkloadError("adjacency matrix must be square")
    # Pull iterates rows of the transposed adjacency: in-neighbour lists.
    transposed = CSRMatrix.from_coo_arrays(
        (n, n), adjacency.cols, adjacency.rows, np.ones(adjacency.nnz)
    )
    out_degree = _out_degrees(adjacency)
    rank = np.full(n, 1.0 / n, dtype=np.float64)

    row_pointers = transposed.row_pointers
    col_indices = transposed.col_indices
    in_degrees = transposed.row_lengths()
    row_of_edge = np.repeat(np.arange(n, dtype=np.int64), in_degrees)
    for _ in range(iterations):
        contribution = rank / out_degree
        if backend == BACKEND_REFERENCE:
            new_rank = np.empty(n, dtype=np.float64)
            for v in range(n):
                start, end = row_pointers[v], row_pointers[v + 1]
                new_rank[v] = float(contribution[col_indices[start:end]].sum())
        else:
            new_rank = np.bincount(
                row_of_edge, weights=contribution[col_indices], minlength=n
            )
        rank = (1.0 - DAMPING) / n + DAMPING * new_rank

    partitioning = tile_rows_by_nnz(transposed, outer_parallelism)
    if backend == BACKEND_REFERENCE:
        vector_slots = vector_slots_for(in_degrees.tolist())
        cross_fraction = cross_tile_fraction_rows(transposed, partitioning)
    else:
        vector_slots = vector_slots_batch(in_degrees)
        cross_fraction = cross_tile_fraction_rows_batch(transposed, partitioning)
    nnz = transposed.nnz
    profile = WorkloadProfile(
        app="pagerank-pull",
        dataset=dataset,
        compute_iterations=iterations * nnz,
        vector_slots=iterations * vector_slots,
        sram_random_reads=iterations * nnz,
        sram_random_updates=0,
        dram_stream_read_bytes=iterations * 4.0 * (2 * nnz + n + 1),
        dram_stream_write_bytes=iterations * 4.0 * n,
        pointer_stream_bytes=iterations * 4.0 * (nnz + n + 1),
        pointer_compression_ratio=_pointer_compression(col_indices),
        tile_work=[w * iterations for w in tile_work_from_partition(partitioning)],
        cross_tile_request_fraction=cross_fraction,
        pipelinable=True,
        outer_parallelism=outer_parallelism,
        extra={"iterations": float(iterations), "edges": float(nnz)},
    )
    return AppRun(output=rank, profile=profile)


def pagerank_edge(
    adjacency: COOMatrix,
    iterations: int = 3,
    dataset: str = "synthetic",
    outer_parallelism: int = DEFAULT_OUTER_PARALLELISM,
    ranks_fit_on_chip: bool = True,
    backend: str = "vectorized",
) -> AppRun:
    """Edge-centric PageRank: scatter rank along every edge with atomics.

    The edge-centric kernel's counters were always computed analytically
    from the COO triplet arrays, so both backends share one implementation.

    Args:
        adjacency: Directed graph as a COO adjacency matrix.
        iterations: Power iterations to run.
        dataset: Dataset label for the profile.
        outer_parallelism: CU/SpMU pairs edges are spread across.
        ranks_fit_on_chip: If ``True`` (default -- the evaluated graphs'
            rank vectors fit in Capstan's 50 MiB of distributed SRAM),
            destination updates are on-chip SpMU updates; if ``False``
            they are atomic DRAM updates through the address generators.
        backend: Accepted for interface uniformity (both backends match).
    """
    check_backend(backend)
    if iterations <= 0:
        raise WorkloadError("iterations must be positive")
    n = adjacency.shape[0]
    src, dst = adjacency.rows, adjacency.cols
    out_degree = _out_degrees(adjacency)
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    for _ in range(iterations):
        contribution = rank / out_degree
        new_rank = np.zeros(n, dtype=np.float64)
        np.add.at(new_rank, dst, contribution[src])
        rank = (1.0 - DAMPING) / n + DAMPING * new_rank

    nnz = adjacency.nnz
    tiles = outer_parallelism
    tile_work = np.bincount(np.arange(nnz) % tiles, minlength=tiles).astype(float)
    nodes_per_tile = max(1, n // tiles)
    owner = np.minimum(dst // nodes_per_tile, tiles - 1)
    cross_fraction = float(np.count_nonzero(owner != (np.arange(nnz) % tiles))) / max(1, nnz)
    # Hot destination vertices of power-law graphs concentrate updates; the
    # profile notes the skew so reports can explain SRAM conflicts.
    in_counts = np.bincount(dst, minlength=n)
    skew = float(in_counts.max()) / max(1.0, in_counts.mean())

    sram_updates = iterations * nnz if ranks_fit_on_chip else 0
    dram_updates = 0 if ranks_fit_on_chip else iterations * nnz
    profile = WorkloadProfile(
        app="pagerank-edge",
        dataset=dataset,
        compute_iterations=iterations * nnz,
        vector_slots=iterations * vector_slots_for([nnz]),
        sram_random_reads=iterations * nnz,
        sram_random_updates=sram_updates,
        dram_random_updates=dram_updates,
        dram_stream_read_bytes=iterations * 4.0 * (2 * nnz + n),
        dram_stream_write_bytes=iterations * 4.0 * n,
        pointer_stream_bytes=iterations * 4.0 * 2 * nnz,
        pointer_compression_ratio=_pointer_compression(np.concatenate([src, dst])),
        tile_work=(tile_work * iterations).tolist(),
        cross_tile_request_fraction=cross_fraction,
        pipelinable=True,
        outer_parallelism=outer_parallelism,
        extra={"iterations": float(iterations), "edges": float(nnz), "in_degree_skew": skew},
    )
    return AppRun(output=rank, profile=profile)


def reference_pagerank(adjacency: COOMatrix, iterations: int = 3) -> np.ndarray:
    """Dense power-iteration reference with the same damping and iterations."""
    n = adjacency.shape[0]
    dense = adjacency.to_dense()
    out_degree = np.maximum((dense != 0).sum(axis=1), 1.0)
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    transfer = (dense != 0).astype(np.float64)
    for _ in range(iterations):
        rank = (1.0 - DAMPING) / n + DAMPING * (transfer.T @ (rank / out_degree))
    return rank


@register_app(
    "pagerank-pull",
    datasets=GRAPH_DATASET_NAMES,
    run=pagerank_pull,
    order=50,
    context_fields=("scale", "pagerank_iterations"),
)
def _prepare_pagerank_pull(dataset: str, context: RunContext) -> dict:
    """Pull-PageRank inputs: the scaled graph and the iteration budget."""
    generated = load_dataset(dataset, scale=context.scale)
    return {
        "adjacency": generated.matrix,
        "iterations": context.pagerank_iterations,
        "dataset": generated.name,
    }


@register_app(
    "pagerank-edge",
    datasets=GRAPH_DATASET_NAMES,
    run=pagerank_edge,
    order=60,
    context_fields=("scale", "pagerank_iterations"),
)
def _prepare_pagerank_edge(dataset: str, context: RunContext) -> dict:
    """Edge-PageRank inputs: the scaled graph and the iteration budget."""
    generated = load_dataset(dataset, scale=context.scale)
    return {
        "adjacency": generated.matrix,
        "iterations": context.pagerank_iterations,
        "dataset": generated.name,
    }
