"""Sparse-sparse convolution (Table 2, Conv rows).

The convolution kernel iterates the *non-zero input activations* (a data
scan), then the non-zero kernel weights of the matching input channel, and
scatters each product into the output tensor:

    Out[oC, r+rK, c+cK] += In[iC, r, c] * K[iC][rK, cK, oC]

The scattered updates are strided (by output-channel plane size and kernel
offsets) -- the pathological case for linear bank mapping that motivates
Capstan's XOR address hashing (Table 9's Conv column). Because output tiles
overlap at their borders (halo exchange), convolution uses the shuffle
network for cross-tile accumulation.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..runtime.registry import RunContext, register_app
from ..workloads.resnet import RESNET_LAYERS, ConvWorkload, generate_conv_layer
from .common import BACKEND_REFERENCE, AppRun, check_backend
from .profile import WorkloadProfile, vector_slots_batch, vector_slots_for
from .scan_model import data_scan_cost
from .spmv import DEFAULT_OUTER_PARALLELISM


def sparse_convolution(
    workload: ConvWorkload,
    dataset: str = "resnet50",
    outer_parallelism: int = DEFAULT_OUTER_PARALLELISM,
    backend: str = "vectorized",
) -> AppRun:
    """Zero-skipping convolution over a pruned layer.

    Args:
        workload: Activation and weight tensors from
            :func:`repro.workloads.resnet.generate_conv_layer`.
        dataset: Dataset label for the profile.
        outer_parallelism: CU/SpMU pairs the spatial tiles are spread across.
        backend: ``"vectorized"`` (batch kernels) or ``"reference"`` (loops).

    Returns:
        An :class:`AppRun` whose output is the dense output tensor
        ``(out_channels, H, W)``.
    """
    check_backend(backend)
    activations = workload.activations
    weights = workload.weights
    in_ch, h, w = activations.shape
    _, kh, kw, out_ch = weights.shape
    if weights.shape[0] != in_ch:
        raise WorkloadError("weight input channels must match activations")
    pad_h, pad_w = kh // 2, kw // 2
    output = np.zeros((out_ch, h + 2 * pad_h, w + 2 * pad_w), dtype=np.float64)

    macs = 0
    updates = 0
    activation_nnz = 0
    vector_slots = 0
    tiles = outer_parallelism
    tile_work = np.zeros(tiles, dtype=np.float64)
    # Spatial tiling: split the image into `tiles` horizontal stripes; a
    # scattered update whose target row falls in another stripe (the halo)
    # crosses the shuffle network.
    rows_per_tile = max(1, h // tiles)
    cross_updates = 0

    for ic in range(in_ch):
        act_plane = activations[ic]
        nz_r, nz_c = np.nonzero(act_plane)
        activation_nnz += nz_r.size
        kernel = weights[ic]  # (kh, kw, out_ch)
        k_r, k_c, k_o = np.nonzero(kernel)
        kernel_values = kernel[k_r, k_c, k_o]
        kernel_nnz = k_r.size
        if backend == BACKEND_REFERENCE:
            vector_slots += vector_slots_for([kernel_nnz] * nz_r.size)
            for r, c in zip(nz_r.tolist(), nz_c.tolist()):
                act_value = float(act_plane[r, c])
                if not kernel_nnz:
                    continue
                out_rows = r + k_r
                out_cols = c + k_c
                np.add.at(output, (k_o, out_rows, out_cols), act_value * kernel_values)
                macs += kernel_nnz
                updates += kernel_nnz
                source_tile = min(r // rows_per_tile, tiles - 1)
                target_tiles = np.minimum(out_rows // rows_per_tile, tiles - 1)
                cross_updates += int(np.count_nonzero(target_tiles != source_tile))
                tile_work[source_tile] += kernel_nnz
        else:
            # One inner-loop instance per non-zero activation, each over the
            # channel's non-zero kernel taps.
            vector_slots += int(nz_r.size) * vector_slots_batch([kernel_nnz])
            if not kernel_nnz or not nz_r.size:
                continue
            # Outer product of activations and kernel taps, scattered into
            # the padded output in one pass.
            out_rows = (nz_r[:, None] + k_r[None, :]).ravel()
            out_cols = (nz_c[:, None] + k_c[None, :]).ravel()
            out_chan = np.broadcast_to(k_o, (nz_r.size, kernel_nnz)).ravel()
            products = (
                act_plane[nz_r, nz_c][:, None] * kernel_values[None, :]
            ).ravel()
            flat = np.ravel_multi_index((out_chan, out_rows, out_cols), output.shape)
            output += np.bincount(
                flat, weights=products, minlength=output.size
            ).reshape(output.shape)
            macs += int(nz_r.size) * kernel_nnz
            updates += int(nz_r.size) * kernel_nnz
            source_tile = np.minimum(nz_r // rows_per_tile, tiles - 1)
            target_tiles = np.minimum(out_rows // rows_per_tile, tiles - 1)
            cross_updates += int(
                np.count_nonzero(
                    target_tiles != np.repeat(source_tile, kernel_nnz)
                )
            )
            tile_work += np.bincount(
                source_tile, weights=np.full(nz_r.size, float(kernel_nnz)), minlength=tiles
            )

    # Crop the padded accumulation buffer back to the layer's output size.
    cropped = output[:, pad_h : pad_h + h, pad_w : pad_w + w]

    data_scan = data_scan_cost(activation_nnz, in_ch * h * w)
    kernel_words = int(np.count_nonzero(weights)) * 2
    profile = WorkloadProfile(
        app="conv",
        dataset=dataset,
        compute_iterations=macs,
        vector_slots=vector_slots,
        scan_cycles=data_scan.cycles,
        scan_empty_cycles=data_scan.empty_cycles,
        scan_elements=data_scan.elements,
        sram_random_reads=0,
        sram_random_updates=updates,
        strided_fraction=0.9,  # output-channel strides are powers of two
        dram_stream_read_bytes=4.0 * (activations.size + kernel_words),
        dram_stream_write_bytes=4.0 * cropped.size,
        pointer_stream_bytes=0.0,
        pointer_compression_ratio=1.0,
        tile_work=tile_work.tolist(),
        cross_tile_request_fraction=cross_updates / max(1, updates),
        pipelinable=True,
        outer_parallelism=outer_parallelism,
        extra={
            "macs": float(macs),
            "activation_nnz": float(activation_nnz),
            "dense_macs": float(workload.macs()),
        },
    )
    return AppRun(output=cropped.copy(), profile=profile)


@register_app(
    "conv",
    datasets=tuple(RESNET_LAYERS),
    run=sparse_convolution,
    order=40,
    context_fields=("conv_scale",),
)
def _prepare_conv(dataset: str, context: RunContext) -> dict:
    """Conv inputs: the pruned ResNet-50 layer at the context's channel scale."""
    workload = generate_conv_layer(dataset, scale=context.conv_scale)
    return {"workload": workload, "dataset": dataset}
