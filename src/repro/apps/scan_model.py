"""Vectorized scanner cost model used by the applications.

The :class:`~repro.core.scanner.BitVectorScanner` is the bit-exact hardware
model; it materializes dense occupancy masks, which is fine for unit tests
but too slow for application-scale index spaces (hundreds of thousands of
positions). The helpers here compute the *same* cycle costs directly from
sorted index arrays with ``numpy`` bucket counting:

* the scanner consumes ``bit_width`` (256) bits of the combined occupancy
  mask per cycle;
* a chunk with more than ``output_vectorization`` (16) set bits takes
  multiple cycles;
* an all-zero chunk still takes a cycle (the Figure 7 "Scan" overhead);
* in bit-tree mode (Section 2.3), only 512-bit second-level tiles that
  contain a set bit are streamed, plus a top-level scan over the tile
  occupancy vector, so empty regions of very sparse spaces are skipped.

Equivalence with the hardware model is asserted by property-based tests in
``tests/test_scan_model.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from ..config import ScannerConfig
from ..core.scanner import ScanMode, timing_from_indices
from ..errors import SimulationError
from ..formats.bittree import BitTree
from ..formats.bitvector import BitVector

#: Second-level tile size used by the bit-tree format.
BITTREE_TILE_BITS = 512


@dataclass(frozen=True)
class ScanCost:
    """Scanner cycle cost of one (or many aggregated) scan operations.

    Attributes:
        cycles: Scanner-busy cycles.
        empty_cycles: Cycles spent on chunks with no set bits.
        elements: Iteration tuples produced.
        chunks: Input chunks consumed.
    """

    cycles: int
    empty_cycles: int
    elements: int
    chunks: int

    def merge(self, other: "ScanCost") -> "ScanCost":
        """Sum two scan costs."""
        return ScanCost(
            cycles=self.cycles + other.cycles,
            empty_cycles=self.empty_cycles + other.empty_cycles,
            elements=self.elements + other.elements,
            chunks=self.chunks + other.chunks,
        )


_ZERO = ScanCost(cycles=0, empty_cycles=0, elements=0, chunks=0)


def zero_cost() -> ScanCost:
    """An empty scan cost record."""
    return _ZERO


def _chunk_cycles(
    set_indices: np.ndarray, space_length: int, config: ScannerConfig
) -> ScanCost:
    """Cycle cost of scanning a space of ``space_length`` bits densely.

    Delegates to the scanner's shared vectorized accounting core
    (:func:`repro.core.scanner.timing_from_indices`) so the application
    model and the hardware model count cycles through one code path.
    """
    if space_length <= 0:
        return _ZERO
    timing = timing_from_indices(set_indices, space_length, config)
    return ScanCost(
        cycles=timing.cycles,
        empty_cycles=timing.empty_chunks,
        elements=timing.elements,
        chunks=timing.bit_chunks,
    )


def scan_cost_single(
    indices: np.ndarray,
    space_length: int,
    config: Optional[ScannerConfig] = None,
    bittree: bool = False,
) -> ScanCost:
    """Scanner cost of iterating one sparse operand.

    Args:
        indices: Sorted (or unsorted) unique set-bit positions.
        space_length: Logical length of the scanned space.
        config: Scanner configuration (defaults to 256-in / 16-out).
        bittree: Use the two-level bit-tree traversal, which skips empty
            512-bit tiles at the cost of a top-level scan.
    """
    config = config or ScannerConfig()
    index_array = np.asarray(indices, dtype=np.int64)
    if index_array.size and (index_array.min() < 0 or index_array.max() >= space_length):
        raise SimulationError("scan index outside the scanned space")
    if not bittree:
        return _chunk_cycles(index_array, space_length, config)
    return _bittree_cost(index_array, space_length, config)


def scan_cost_pair(
    indices_a: np.ndarray,
    indices_b: np.ndarray,
    space_length: int,
    mode: ScanMode = ScanMode.UNION,
    config: Optional[ScannerConfig] = None,
    bittree: bool = False,
) -> ScanCost:
    """Scanner cost of a two-operand intersection or union scan.

    The scanner streams the *combined* occupancy mask, so the cost depends
    on the union (or intersection) of the operands' set bits.
    """
    config = config or ScannerConfig()
    a = np.asarray(indices_a, dtype=np.int64)
    b = np.asarray(indices_b, dtype=np.int64)
    if mode is ScanMode.UNION:
        combined = np.union1d(a, b)
    elif mode is ScanMode.INTERSECT:
        combined = np.intersect1d(a, b)
    else:
        combined = a
    # The scanner still has to *stream* the union of occupancy even when
    # intersecting (both operands' bits pass through the AND), so chunk
    # traversal is governed by the union; emitted elements follow `combined`.
    streamed = np.union1d(a, b) if mode in (ScanMode.UNION, ScanMode.INTERSECT) else a
    base = scan_cost_single(streamed, space_length, config, bittree)
    return ScanCost(
        cycles=base.cycles,
        empty_cycles=base.empty_cycles,
        elements=int(combined.size),
        chunks=base.chunks,
    )


def _bittree_cost(indices: np.ndarray, space_length: int, config: ScannerConfig) -> ScanCost:
    """Two-level bit-tree traversal cost: top-level scan plus occupied tiles."""
    tiles = (space_length + BITTREE_TILE_BITS - 1) // BITTREE_TILE_BITS
    if indices.size == 0:
        top = _chunk_cycles(np.empty(0, dtype=np.int64), tiles, config)
        return top
    tile_ids = np.unique(indices // BITTREE_TILE_BITS)
    top = _chunk_cycles(tile_ids, tiles, config)
    # Each occupied tile is scanned as a dense 512-bit region.
    within = indices - (indices // BITTREE_TILE_BITS) * BITTREE_TILE_BITS
    counts = np.bincount(indices // BITTREE_TILE_BITS, minlength=tiles)[tile_ids]
    out = config.output_vectorization
    chunks_per_tile = (BITTREE_TILE_BITS + config.bit_width - 1) // config.bit_width
    # Occupied chunk cycles: approximate each tile's set bits as spread over
    # its chunks proportionally, which matches the dense computation when
    # tiles are a single chunk (512 <= bit_width) and is conservative
    # otherwise.
    per_tile_cycles = np.maximum(chunks_per_tile, (counts + out - 1) // out)
    tile_cycles = int(per_tile_cycles.sum())
    del within
    return ScanCost(
        cycles=top.cycles + tile_cycles,
        empty_cycles=top.empty_cycles,
        elements=int(indices.size),
        chunks=top.chunks + int(tile_ids.size) * chunks_per_tile,
    )


def _group_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """Start offsets of each run of equal values in a sorted key array."""
    if sorted_keys.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.flatnonzero(np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1])))


def scan_cost_rows(
    row_ids: np.ndarray,
    positions: np.ndarray,
    n_rows: int,
    space_length: int,
    config: Optional[ScannerConfig] = None,
    bittree: bool = False,
) -> ScanCost:
    """Aggregate scanner cost of one scan per row, computed in one pass.

    Equivalent to merging ``scan_cost_single(positions of row r, space_length)``
    over every row ``r`` in ``[0, n_rows)`` -- including rows with no
    positions, which still stream their (empty) occupancy chunks. Positions
    must be unique within each row (the callers scan union/occupancy sets).

    Args:
        row_ids: Row id per position (values in ``[0, n_rows)``).
        positions: Set-bit position per entry (values in ``[0, space_length)``).
        n_rows: Number of scans performed (one per row).
        space_length: Logical length of each scanned space.
        config: Scanner configuration (defaults to 256-in / 16-out).
        bittree: Use the two-level bit-tree traversal per row.
    """
    config = config or ScannerConfig()
    rows = np.asarray(row_ids, dtype=np.int64)
    pos = np.asarray(positions, dtype=np.int64)
    if rows.size != pos.size:
        raise SimulationError("row_ids and positions must have matching length")
    if n_rows < 0 or space_length < 0:
        raise SimulationError("n_rows and space_length must be non-negative")
    if pos.size and (pos.min() < 0 or pos.max() >= space_length):
        raise SimulationError("scan index outside the scanned space")
    if rows.size and (rows.min() < 0 or rows.max() >= n_rows):
        raise SimulationError("row id outside [0, n_rows)")
    if space_length == 0:
        return _ZERO
    if not bittree:
        return _flat_rows_cost(rows, pos, n_rows, space_length, config)
    return _bittree_rows_cost(rows, pos, n_rows, space_length, config)


def _occupied_chunk_cost(chunk_keys: np.ndarray, out: int) -> Tuple[int, int]:
    """(sum of ceil(count/out) over runs, number of runs) of sorted keys."""
    if chunk_keys.size == 0:
        return 0, 0
    starts = _group_starts(chunk_keys)
    counts = np.diff(np.concatenate((starts, [chunk_keys.size])))
    return int(((counts + out - 1) // out).sum()), int(starts.size)


def _flat_rows_cost(
    rows: np.ndarray, pos: np.ndarray, n_rows: int, space_length: int, config: ScannerConfig
) -> ScanCost:
    """Batch equivalent of per-row :func:`_chunk_cycles`."""
    width = config.bit_width
    out = config.output_vectorization
    chunks_per_row = (space_length + width - 1) // width
    keys = np.sort(rows * chunks_per_row + pos // width)
    occupied_cycles, occupied_chunks = _occupied_chunk_cost(keys, out)
    empty = n_rows * chunks_per_row - occupied_chunks
    return ScanCost(
        cycles=occupied_cycles + empty,
        empty_cycles=empty,
        elements=int(pos.size),
        chunks=n_rows * chunks_per_row,
    )


def _bittree_rows_cost(
    rows: np.ndarray, pos: np.ndarray, n_rows: int, space_length: int, config: ScannerConfig
) -> ScanCost:
    """Batch equivalent of per-row :func:`_bittree_cost`."""
    out = config.output_vectorization
    tiles_per_row = (space_length + BITTREE_TILE_BITS - 1) // BITTREE_TILE_BITS
    chunks_per_tile = (BITTREE_TILE_BITS + config.bit_width - 1) // config.bit_width
    # Second level: per-(row, tile) position counts; each occupied tile is
    # streamed densely, costing max(chunks_per_tile, ceil(count/out)).
    tile_keys = np.sort(rows * tiles_per_row + pos // BITTREE_TILE_BITS)
    starts = _group_starts(tile_keys)
    counts = np.diff(np.concatenate((starts, [tile_keys.size])))
    tile_cycles = int(np.maximum(chunks_per_tile, (counts + out - 1) // out).sum())
    occupied_tiles = int(starts.size)
    # Top level: each row scans its tile-occupancy vector of tiles_per_row
    # bits; the distinct (row, tile) runs above are exactly its set bits.
    distinct_tiles = tile_keys[starts] if starts.size else tile_keys
    top = _flat_rows_cost(
        distinct_tiles // tiles_per_row,
        distinct_tiles % tiles_per_row,
        n_rows,
        tiles_per_row,
        config,
    )
    return ScanCost(
        cycles=top.cycles + tile_cycles,
        empty_cycles=top.empty_cycles,
        elements=int(pos.size),
        chunks=top.chunks + occupied_tiles * chunks_per_tile,
    )


def scan_cost_growing_unions(
    row_ids: np.ndarray,
    positions: np.ndarray,
    first_steps: np.ndarray,
    steps_per_row: np.ndarray,
    space_length: int,
    config: Optional[ScannerConfig] = None,
) -> ScanCost:
    """Aggregate cost of scanning a per-row *growing* union once per step.

    Models the SpMSpM inner loop: within each row, step ``t`` unions a new
    operand into the row's accumulated index set and streams the combined
    occupancy, so step ``t`` scans ``U_t = U_{t-1} | operand_t``. Given, for
    every element of the final union ``U_k``, the first step at which it
    entered (1-based), this computes -- without materializing any
    intermediate union -- the exact merge of

        ``scan_cost_pair(operand_t, U_{t-1}, space_length, UNION)``

    over all steps of all rows, using the identity
    ``ceil(c/out) = sum_j [c > out*j]``: within one occupancy chunk whose
    sorted first-steps are ``s_0 <= s_1 <= ...``, the chunk's element count
    at step ``t`` exceeds ``out*j`` exactly for the ``k - s[out*j] + 1``
    steps ``t >= s[out*j]``.

    Args:
        row_ids: Row id per final-union element.
        positions: Set-bit position per final-union element (unique per row).
        first_steps: 1-based step at which each element entered its row's union.
        steps_per_row: Number of union steps per row (length = number of rows).
        space_length: Logical length of the scanned space.
        config: Scanner configuration (defaults to 256-in / 16-out).
    """
    config = config or ScannerConfig()
    rows = np.asarray(row_ids, dtype=np.int64)
    pos = np.asarray(positions, dtype=np.int64)
    first = np.asarray(first_steps, dtype=np.int64)
    steps = np.asarray(steps_per_row, dtype=np.int64)
    if not (rows.size == pos.size == first.size):
        raise SimulationError("row_ids, positions, and first_steps must match in length")
    if space_length <= 0:
        return _ZERO
    total_steps = int(steps.sum())
    if total_steps == 0:
        return _ZERO
    width = config.bit_width
    out = config.output_vectorization
    chunks_per_row = (space_length + width - 1) // width

    if rows.size == 0:
        # Steps with nothing ever unioned cannot occur (each step unions a
        # non-empty operand), but guard the degenerate call anyway.
        empty = total_steps * chunks_per_row
        return ScanCost(
            cycles=empty, empty_cycles=empty, elements=0, chunks=empty
        )

    k_per_element = steps[rows]  # steps executed by each element's row
    # Sort by (row, chunk) group, then by first step within the group.
    group = rows * chunks_per_row + pos // width
    order = np.lexsort((first, group))
    group_sorted = group[order]
    first_sorted = first[order]
    k_sorted = k_per_element[order]
    starts = _group_starts(group_sorted)
    sizes = np.diff(np.concatenate((starts, [group_sorted.size])))
    # Rank of each element within its (row, chunk) group.
    rank = np.arange(group_sorted.size) - np.repeat(starts, sizes)
    # ceil-sum part: elements at ranks 0, out, 2*out, ... each open one more
    # output beat for the k - s + 1 steps from their arrival on.
    threshold = rank % out == 0
    occupied_cycles = int((k_sorted[threshold] - first_sorted[threshold] + 1).sum())
    # Chunks are empty before their first element arrives (1 cycle each).
    chunk_occupied_steps = int((k_sorted[starts] - first_sorted[starts] + 1).sum())
    empty = total_steps * chunks_per_row - chunk_occupied_steps
    # Every step emits its full running union.
    elements = int((k_per_element - first + 1).sum())
    return ScanCost(
        cycles=occupied_cycles + empty,
        empty_cycles=empty,
        elements=elements,
        chunks=total_steps * chunks_per_row,
    )


SparseOperand = Union[BitVector, BitTree]


def _operand_indices(operand: SparseOperand) -> Tuple[np.ndarray, int]:
    """Set-bit positions and logical length of a bit-vector or bit-tree."""
    if isinstance(operand, BitTree):
        return operand.indices(), operand.length
    return operand.indices, operand.length


def scan_cost_operands(
    operand_a: SparseOperand,
    operand_b: Optional[SparseOperand] = None,
    mode: ScanMode = ScanMode.UNION,
    config: Optional[ScannerConfig] = None,
) -> ScanCost:
    """Scanner cost directly from bit-vector / bit-tree operands.

    Bit-tree operands use the two-level traversal (top-level scan plus
    occupied 512-bit tiles); mixed operand kinds are rejected because the
    hardware streams both inputs through one scanner configuration.
    """
    bittree = isinstance(operand_a, BitTree)
    if operand_b is not None and isinstance(operand_b, BitTree) != bittree:
        raise SimulationError("scan operands must share a format")
    for operand in (operand_a, operand_b):
        if isinstance(operand, BitTree) and operand.tile_bits != BITTREE_TILE_BITS:
            raise SimulationError(
                f"the scan model assumes {BITTREE_TILE_BITS}-bit tiles, "
                f"got {operand.tile_bits}"
            )
    indices_a, length_a = _operand_indices(operand_a)
    if operand_b is None:
        return scan_cost_single(indices_a, length_a, config, bittree)
    indices_b, length_b = _operand_indices(operand_b)
    if length_a != length_b:
        raise SimulationError(
            f"scan operands must have equal length: {length_a} vs {length_b}"
        )
    return scan_cost_pair(indices_a, indices_b, length_a, mode, config, bittree)


def data_scan_cost(
    values_nonzero: int, total_values: int, config: Optional[ScannerConfig] = None
) -> ScanCost:
    """Cost of the scalar data scanner over a value stream.

    The data scanner examines ``data_width`` values per cycle and emits one
    non-zero per cycle, so cost is ``max(non-zeros, chunks)``.
    """
    config = config or ScannerConfig()
    if total_values < 0 or values_nonzero < 0 or values_nonzero > total_values:
        raise SimulationError("invalid data scan counts")
    chunks = (total_values + config.data_width - 1) // config.data_width
    cycles = max(values_nonzero, chunks)
    return ScanCost(
        cycles=int(cycles),
        empty_cycles=int(max(0, chunks - values_nonzero)),
        elements=int(values_nonzero),
        chunks=int(chunks),
    )
