"""Vectorized scanner cost model used by the applications.

The :class:`~repro.core.scanner.BitVectorScanner` is the bit-exact hardware
model; it materializes dense occupancy masks, which is fine for unit tests
but too slow for application-scale index spaces (hundreds of thousands of
positions). The helpers here compute the *same* cycle costs directly from
sorted index arrays with ``numpy`` bucket counting:

* the scanner consumes ``bit_width`` (256) bits of the combined occupancy
  mask per cycle;
* a chunk with more than ``output_vectorization`` (16) set bits takes
  multiple cycles;
* an all-zero chunk still takes a cycle (the Figure 7 "Scan" overhead);
* in bit-tree mode (Section 2.3), only 512-bit second-level tiles that
  contain a set bit are streamed, plus a top-level scan over the tile
  occupancy vector, so empty regions of very sparse spaces are skipped.

Equivalence with the hardware model is asserted by property-based tests in
``tests/test_scan_model.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import ScannerConfig
from ..core.scanner import ScanMode
from ..errors import SimulationError

#: Second-level tile size used by the bit-tree format.
BITTREE_TILE_BITS = 512


@dataclass(frozen=True)
class ScanCost:
    """Scanner cycle cost of one (or many aggregated) scan operations.

    Attributes:
        cycles: Scanner-busy cycles.
        empty_cycles: Cycles spent on chunks with no set bits.
        elements: Iteration tuples produced.
        chunks: Input chunks consumed.
    """

    cycles: int
    empty_cycles: int
    elements: int
    chunks: int

    def merge(self, other: "ScanCost") -> "ScanCost":
        """Sum two scan costs."""
        return ScanCost(
            cycles=self.cycles + other.cycles,
            empty_cycles=self.empty_cycles + other.empty_cycles,
            elements=self.elements + other.elements,
            chunks=self.chunks + other.chunks,
        )


_ZERO = ScanCost(cycles=0, empty_cycles=0, elements=0, chunks=0)


def zero_cost() -> ScanCost:
    """An empty scan cost record."""
    return _ZERO


def _chunk_cycles(
    set_indices: np.ndarray, space_length: int, config: ScannerConfig
) -> ScanCost:
    """Cycle cost of scanning a space of ``space_length`` bits densely."""
    if space_length <= 0:
        return _ZERO
    width = config.bit_width
    out = config.output_vectorization
    chunks = (space_length + width - 1) // width
    if set_indices.size == 0:
        return ScanCost(cycles=chunks, empty_cycles=chunks, elements=0, chunks=chunks)
    counts = np.bincount(set_indices // width, minlength=chunks)
    occupied = counts > 0
    per_chunk_cycles = np.where(occupied, (counts + out - 1) // out, 1)
    cycles = int(per_chunk_cycles.sum())
    empty = int(np.count_nonzero(~occupied))
    return ScanCost(
        cycles=cycles,
        empty_cycles=empty,
        elements=int(set_indices.size),
        chunks=int(chunks),
    )


def scan_cost_single(
    indices: np.ndarray,
    space_length: int,
    config: Optional[ScannerConfig] = None,
    bittree: bool = False,
) -> ScanCost:
    """Scanner cost of iterating one sparse operand.

    Args:
        indices: Sorted (or unsorted) unique set-bit positions.
        space_length: Logical length of the scanned space.
        config: Scanner configuration (defaults to 256-in / 16-out).
        bittree: Use the two-level bit-tree traversal, which skips empty
            512-bit tiles at the cost of a top-level scan.
    """
    config = config or ScannerConfig()
    index_array = np.asarray(indices, dtype=np.int64)
    if index_array.size and (index_array.min() < 0 or index_array.max() >= space_length):
        raise SimulationError("scan index outside the scanned space")
    if not bittree:
        return _chunk_cycles(index_array, space_length, config)
    return _bittree_cost(index_array, space_length, config)


def scan_cost_pair(
    indices_a: np.ndarray,
    indices_b: np.ndarray,
    space_length: int,
    mode: ScanMode = ScanMode.UNION,
    config: Optional[ScannerConfig] = None,
    bittree: bool = False,
) -> ScanCost:
    """Scanner cost of a two-operand intersection or union scan.

    The scanner streams the *combined* occupancy mask, so the cost depends
    on the union (or intersection) of the operands' set bits.
    """
    config = config or ScannerConfig()
    a = np.asarray(indices_a, dtype=np.int64)
    b = np.asarray(indices_b, dtype=np.int64)
    if mode is ScanMode.UNION:
        combined = np.union1d(a, b)
    elif mode is ScanMode.INTERSECT:
        combined = np.intersect1d(a, b)
    else:
        combined = a
    # The scanner still has to *stream* the union of occupancy even when
    # intersecting (both operands' bits pass through the AND), so chunk
    # traversal is governed by the union; emitted elements follow `combined`.
    streamed = np.union1d(a, b) if mode in (ScanMode.UNION, ScanMode.INTERSECT) else a
    base = scan_cost_single(streamed, space_length, config, bittree)
    return ScanCost(
        cycles=base.cycles,
        empty_cycles=base.empty_cycles,
        elements=int(combined.size),
        chunks=base.chunks,
    )


def _bittree_cost(indices: np.ndarray, space_length: int, config: ScannerConfig) -> ScanCost:
    """Two-level bit-tree traversal cost: top-level scan plus occupied tiles."""
    tiles = (space_length + BITTREE_TILE_BITS - 1) // BITTREE_TILE_BITS
    if indices.size == 0:
        top = _chunk_cycles(np.empty(0, dtype=np.int64), tiles, config)
        return top
    tile_ids = np.unique(indices // BITTREE_TILE_BITS)
    top = _chunk_cycles(tile_ids, tiles, config)
    # Each occupied tile is scanned as a dense 512-bit region.
    within = indices - (indices // BITTREE_TILE_BITS) * BITTREE_TILE_BITS
    counts = np.bincount(indices // BITTREE_TILE_BITS, minlength=tiles)[tile_ids]
    out = config.output_vectorization
    chunks_per_tile = (BITTREE_TILE_BITS + config.bit_width - 1) // config.bit_width
    # Occupied chunk cycles: approximate each tile's set bits as spread over
    # its chunks proportionally, which matches the dense computation when
    # tiles are a single chunk (512 <= bit_width) and is conservative
    # otherwise.
    per_tile_cycles = np.maximum(chunks_per_tile, (counts + out - 1) // out)
    tile_cycles = int(per_tile_cycles.sum())
    del within
    return ScanCost(
        cycles=top.cycles + tile_cycles,
        empty_cycles=top.empty_cycles,
        elements=int(indices.size),
        chunks=top.chunks + int(tile_ids.size) * chunks_per_tile,
    )


def data_scan_cost(values_nonzero: int, total_values: int, config: Optional[ScannerConfig] = None) -> ScanCost:
    """Cost of the scalar data scanner over a value stream.

    The data scanner examines ``data_width`` values per cycle and emits one
    non-zero per cycle, so cost is ``max(non-zeros, chunks)``.
    """
    config = config or ScannerConfig()
    if total_values < 0 or values_nonzero < 0 or values_nonzero > total_values:
        raise SimulationError("invalid data scan counts")
    chunks = (total_values + config.data_width - 1) // config.data_width
    cycles = max(values_nonzero, chunks)
    return ScanCost(
        cycles=int(cycles),
        empty_cycles=int(max(0, chunks - values_nonzero)),
        elements=int(values_nonzero),
        chunks=int(chunks),
    )
