"""Shared application plumbing: run results and tiling helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..formats.csr import CSRMatrix
from ..workloads.tiling import Partitioning, balanced_partition
from .profile import WorkloadProfile


@dataclass
class AppRun:
    """The outcome of one functional application run.

    Attributes:
        output: The application's numerical result (shape depends on the
            application; SpMV returns the output vector, SpMSpM a dense
            matrix, BFS the parent array, ...).
        profile: The platform-independent execution profile for timing.
    """

    output: np.ndarray
    profile: WorkloadProfile


def best_source(matrix) -> int:
    """Pick a high-out-degree source vertex for BFS/SSSP.

    The synthetic graph generators can leave low-degree or isolated
    vertices; starting from the highest-out-degree vertex keeps traversals
    covering a meaningful fraction of the graph, as the paper's real
    datasets do.
    """
    degrees = np.bincount(matrix.rows, minlength=matrix.shape[0])
    return int(np.argmax(degrees))


def default_tiles(outer_parallelism: int) -> int:
    """Number of outer-parallel tiles for the paper's 200-unit grid."""
    return max(1, outer_parallelism)


def tile_rows_by_nnz(matrix: CSRMatrix, tiles: int) -> Partitioning:
    """Balanced row partition weighted by per-row non-zeros."""
    return balanced_partition(matrix.row_lengths().astype(np.float64), tiles)


def tile_work_from_partition(partitioning: Partitioning) -> List[float]:
    """Per-tile work totals used for the imbalance model."""
    return partitioning.tile_weights().tolist()


def cross_tile_fraction_rows(matrix: CSRMatrix, partitioning: Partitioning) -> float:
    """Fraction of column accesses that leave the issuing row's tile.

    This estimates how much of an application's random on-chip traffic
    crosses tiles when rows are distributed by ``partitioning`` and the
    accessed vector is distributed the same way.
    """
    assignments = partitioning.assignments
    cols_per_tile = max(1, matrix.shape[1] // max(1, partitioning.tiles))
    cross = 0
    total = 0
    for row in range(matrix.shape[0]):
        cols, _ = matrix.row_slice(row)
        if not cols.size:
            continue
        total += cols.size
        owner = assignments[row]
        col_tiles = np.minimum(cols // cols_per_tile, partitioning.tiles - 1)
        cross += int(np.count_nonzero(col_tiles != owner))
    return cross / total if total else 0.0
