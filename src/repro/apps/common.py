"""Shared application plumbing: run results, tiling, and batch helpers.

The batch helpers here are the array-in/array-out building blocks of the
``vectorized`` profiling backend: ragged CSR/CSC slice expansion, batched
cross-tile accounting, and backend-name validation. Each one computes the
exact quantity its per-element loop counterpart does (asserted by
``tests/test_backend_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import WorkloadError
from ..formats.csr import CSRMatrix
from ..workloads.tiling import Partitioning, balanced_partition
from .profile import WorkloadProfile

#: Profiling-kernel backends every application accepts.
BACKEND_VECTORIZED = "vectorized"
BACKEND_REFERENCE = "reference"
BACKENDS = (BACKEND_VECTORIZED, BACKEND_REFERENCE)


def check_backend(backend: str) -> str:
    """Validate a profiling-backend name (raises :class:`WorkloadError`)."""
    if backend not in BACKENDS:
        raise WorkloadError(
            f"unknown profiling backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


@dataclass
class AppRun:
    """The outcome of one functional application run.

    Attributes:
        output: The application's numerical result (shape depends on the
            application; SpMV returns the output vector, SpMSpM a dense
            matrix, M+M a CSR matrix, BFS the parent array, ...).
        profile: The platform-independent execution profile for timing.
    """

    output: np.ndarray
    profile: WorkloadProfile


def best_source(matrix) -> int:
    """Pick a high-out-degree source vertex for BFS/SSSP.

    The synthetic graph generators can leave low-degree or isolated
    vertices; starting from the highest-out-degree vertex keeps traversals
    covering a meaningful fraction of the graph, as the paper's real
    datasets do.
    """
    degrees = np.bincount(matrix.rows, minlength=matrix.shape[0])
    return int(np.argmax(degrees))


def default_tiles(outer_parallelism: int) -> int:
    """Number of outer-parallel tiles for the paper's 200-unit grid."""
    return max(1, outer_parallelism)


def tile_rows_by_nnz(matrix: CSRMatrix, tiles: int) -> Partitioning:
    """Balanced row partition weighted by per-row non-zeros."""
    return balanced_partition(matrix.row_lengths().astype(np.float64), tiles)


def tile_work_from_partition(partitioning: Partitioning) -> List[float]:
    """Per-tile work totals used for the imbalance model."""
    return partitioning.tile_weights().tolist()


def cross_tile_fraction_rows(matrix: CSRMatrix, partitioning: Partitioning) -> float:
    """Fraction of column accesses that leave the issuing row's tile.

    This estimates how much of an application's random on-chip traffic
    crosses tiles when rows are distributed by ``partitioning`` and the
    accessed vector is distributed the same way. This is the per-row loop
    form used by the reference backend; :func:`cross_tile_fraction_rows_batch`
    computes the identical fraction in one pass.
    """
    assignments = partitioning.assignments
    cols_per_tile = max(1, matrix.shape[1] // max(1, partitioning.tiles))
    cross = 0
    total = 0
    for row in range(matrix.shape[0]):
        cols, _ = matrix.row_slice(row)
        if not cols.size:
            continue
        total += cols.size
        owner = assignments[row]
        col_tiles = np.minimum(cols // cols_per_tile, partitioning.tiles - 1)
        cross += int(np.count_nonzero(col_tiles != owner))
    return cross / total if total else 0.0


def cross_tile_fraction_rows_batch(matrix: CSRMatrix, partitioning: Partitioning) -> float:
    """Batch form of :func:`cross_tile_fraction_rows` (one vectorized pass)."""
    total = matrix.nnz
    if not total:
        return 0.0
    cols_per_tile = max(1, matrix.shape[1] // max(1, partitioning.tiles))
    owners = np.repeat(partitioning.assignments, matrix.row_lengths())
    col_tiles = np.minimum(matrix.col_indices // cols_per_tile, partitioning.tiles - 1)
    return int(np.count_nonzero(col_tiles != owners)) / total


def expand_slices(
    pointers: np.ndarray, selected: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten compressed (CSR/CSC) slices into one gather-index array.

    Args:
        pointers: A compressed pointer array (``row_pointers``/``col_pointers``).
        selected: Slice ids to expand, in order (``None`` expands all, in order).

    Returns:
        ``(flat, lengths)`` where ``lengths[i]`` is the size of the i-th
        selected slice and ``flat`` concatenates the index ranges
        ``pointers[s]:pointers[s+1]`` of every selected slice, so
        ``col_indices[flat]`` gathers all their stored entries at once.
    """
    if selected is None:
        starts = pointers[:-1]
        lengths = np.diff(pointers)
    else:
        starts = pointers[selected]
        lengths = pointers[np.asarray(selected) + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lengths.astype(np.int64)
    offsets = np.cumsum(lengths) - lengths
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, lengths)
    return flat, lengths.astype(np.int64)
