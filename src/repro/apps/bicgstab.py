"""Stabilized biconjugate gradient solver (BiCGStab, Section 4.4).

BiCGStab solves ``A x = b`` for a general square matrix by combining sparse
matrix-vector products with dense dot products and AXPY updates. The paper
uses it to demonstrate streaming kernel fusion: a CPU or GPU launches the
SpMV and dense kernels separately (paying kernel-launch and memory-round-trip
overhead between them), while Capstan fuses them into one on-chip pipeline,
so the sparse matrix is streamed once per iteration and the dense vectors
stay on chip.

The implementation below runs the textbook algorithm [van der Vorst 1992]
functionally (validated by checking the residual), building its profile
from the fused CSR SpMV profile plus the dense vector work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..formats.csr import CSRMatrix
from ..runtime.registry import RunContext, register_app
from ..workloads import LINEAR_ALGEBRA_DATASET_NAMES, load_dataset, make_diagonally_dominant
from .common import AppRun, check_backend
from .profile import WorkloadProfile
from .spmv import DEFAULT_OUTER_PARALLELISM, _csr_matvec, spmv_csr


@dataclass
class BiCGStabResult:
    """Solver outcome.

    Attributes:
        solution: The final iterate ``x``.
        residual_norm: ``||b - A x||_2`` at exit.
        iterations: Iterations executed.
        converged: Whether the tolerance was met.
    """

    solution: np.ndarray
    residual_norm: float
    iterations: int
    converged: bool


def bicgstab(
    matrix: CSRMatrix,
    rhs: np.ndarray,
    tolerance: float = 1e-8,
    max_iterations: int = 50,
    dataset: str = "synthetic",
    outer_parallelism: int = DEFAULT_OUTER_PARALLELISM,
    fused: bool = True,
    backend: str = "vectorized",
) -> AppRun:
    """Solve ``A x = b`` with BiCGStab and profile the fused pipeline.

    Args:
        matrix: Square system matrix in CSR form (should be reasonably
            conditioned; the workload generator produces diagonally
            dominant systems).
        rhs: Right-hand side vector ``b``.
        tolerance: Relative residual tolerance.
        max_iterations: Iteration cap.
        dataset: Dataset label for the profile.
        outer_parallelism: CU/SpMU pairs used by the fused pipeline.
        fused: If ``True`` (Capstan), the per-iteration dense kernels are
            fused with the SpMVs into one streaming pipeline; if ``False``
            the profile marks every kernel boundary as an un-pipelinable
            round (the CPU/GPU behaviour that causes their up-to-3x
            BiCGStab slowdown over plain SpMV).
        backend: Profiling backend for the embedded SpMV kernel. The solver
            *numerics* are backend-independent (one shared matvec), so both
            backends walk the identical iteration trajectory; only how the
            per-SpMV profile counters are computed switches.
    """
    check_backend(backend)
    n = matrix.shape[0]
    if matrix.shape[0] != matrix.shape[1]:
        raise WorkloadError("BiCGStab requires a square matrix")
    b = np.asarray(rhs, dtype=np.float64)
    if b.shape != (n,):
        raise WorkloadError("rhs length must match the matrix dimension")

    x = np.zeros(n, dtype=np.float64)
    spmv_count = 0
    # The SpMV profile depends only on the matrix structure, never on the
    # multiplied vector, so one profiled run covers every invocation.
    unit_profile: WorkloadProfile = spmv_csr(
        matrix,
        np.zeros(n, dtype=np.float64),
        dataset=dataset,
        outer_parallelism=outer_parallelism,
        backend=backend,
    ).profile

    def profiled_spmv(vector: np.ndarray) -> np.ndarray:
        nonlocal spmv_count
        spmv_count += 1
        return _csr_matvec(matrix, vector)

    r = b - profiled_spmv(x)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros(n, dtype=np.float64)
    p = np.zeros(n, dtype=np.float64)
    b_norm = float(np.linalg.norm(b)) or 1.0
    converged = False
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        rho_new = float(np.dot(r_hat, r))
        if rho_new == 0.0:
            break
        beta = (rho_new / rho) * (alpha / omega) if iterations > 1 else 0.0
        rho = rho_new
        p = r + beta * (p - omega * v) if iterations > 1 else r.copy()
        v = profiled_spmv(p)
        denom = float(np.dot(r_hat, v))
        if denom == 0.0:
            break
        alpha = rho / denom
        s = r - alpha * v
        if float(np.linalg.norm(s)) / b_norm < tolerance:
            x = x + alpha * p
            converged = True
            break
        t = profiled_spmv(s)
        t_norm = float(np.dot(t, t))
        omega = float(np.dot(t, s)) / t_norm if t_norm else 0.0
        x = x + alpha * p + omega * s
        r = s - omega * t
        if float(np.linalg.norm(r)) / b_norm < tolerance:
            converged = True
            break

    residual = float(np.linalg.norm(b - _csr_matvec(matrix, x)))

    # Dense vector work per iteration: ~6 AXPY/dot kernels over n elements.
    dense_ops_per_iteration = 6 * n
    dense_iterations = iterations * dense_ops_per_iteration
    assert spmv_count > 0
    spmv_profile = unit_profile
    for _ in range(spmv_count - 1):
        spmv_profile = spmv_profile.merge(unit_profile)
    profile = WorkloadProfile(
        app="bicgstab",
        dataset=dataset,
        compute_iterations=spmv_profile.compute_iterations + dense_iterations,
        vector_slots=spmv_profile.vector_slots + dense_iterations // 16,
        scan_cycles=spmv_profile.scan_cycles,
        scan_empty_cycles=spmv_profile.scan_empty_cycles,
        scan_elements=spmv_profile.scan_elements,
        sram_random_reads=spmv_profile.sram_random_reads,
        sram_random_updates=spmv_profile.sram_random_updates,
        dram_stream_read_bytes=spmv_profile.dram_stream_read_bytes,
        dram_stream_write_bytes=spmv_profile.dram_stream_write_bytes
        + (0.0 if fused else iterations * 6 * 4.0 * n),
        pointer_stream_bytes=spmv_profile.pointer_stream_bytes,
        pointer_compression_ratio=spmv_profile.pointer_compression_ratio,
        tile_work=spmv_profile.tile_work,
        cross_tile_request_fraction=spmv_profile.cross_tile_request_fraction,
        sequential_rounds=0 if fused else 8 * iterations,
        pipelinable=fused,
        outer_parallelism=outer_parallelism,
        extra={
            "iterations": float(iterations),
            "spmv_invocations": float(spmv_count),
            "residual": residual,
            "converged": float(converged),
        },
    )
    result = BiCGStabResult(
        solution=x, residual_norm=residual, iterations=iterations, converged=converged
    )
    run = AppRun(output=x, profile=profile)
    run.result = result  # type: ignore[attr-defined]
    return run


@register_app(
    "bicgstab",
    datasets=LINEAR_ALGEBRA_DATASET_NAMES,
    run=bicgstab,
    order=110,
    context_fields=("scale",),
)
def _prepare_bicgstab(dataset: str, context: RunContext) -> dict:
    """BiCGStab inputs: a diagonally dominant system and a random RHS."""
    generated = load_dataset(dataset, scale=context.scale)
    system = make_diagonally_dominant(generated.matrix)
    rng = np.random.default_rng(31)
    rhs = rng.random(system.shape[0])
    return {
        "matrix": system,
        "rhs": rhs,
        "dataset": generated.name,
        "max_iterations": 20,
    }
