"""Breadth-first search with bitset frontiers (Table 2).

The BFS kernel keeps two bitsets (frontier ``Fr`` and reached ``Rch``) plus
a dense back-pointer array. Every level it scans the frontier bitset
(sparse iteration), walks the adjacency list of each frontier vertex, and
for each neighbour performs the conditional updates

    Ptr[d] = Rch[d] ? Ptr[d] : s          (write-if-memory-zero)
    Fr[d] |= !Rch[d]
    Rch[d] = True                         (test-and-set)

which Capstan maps to SpMU read-modify-write operations. BFS cannot be
pipelined across levels (each level's frontier depends on the previous
level), so the on-chip network latency per level shows up in Figure 7.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..runtime.registry import RunContext, register_app
from ..workloads import GRAPH_DATASET_NAMES, load_dataset
from .common import BACKEND_REFERENCE, AppRun, best_source, check_backend, expand_slices
from .profile import WorkloadProfile, vector_slots_batch, vector_slots_for
from .scan_model import scan_cost_single, zero_cost
from .spmv import DEFAULT_OUTER_PARALLELISM, _pointer_compression


def bfs(
    adjacency: COOMatrix,
    source: int = 0,
    dataset: str = "synthetic",
    outer_parallelism: int = DEFAULT_OUTER_PARALLELISM,
    write_backpointers: bool = True,
    backend: str = "vectorized",
) -> AppRun:
    """Frontier-based BFS from ``source``.

    Levels are inherently sequential (each frontier depends on the last),
    so both backends iterate levels; the vectorized backend expands each
    level's adjacency lists in one ragged gather and claims parents by
    first occurrence -- exactly the order the reference loop visits them.

    Args:
        adjacency: Directed graph (``src -> dst``) in COO form.
        source: Start vertex.
        dataset: Dataset label for the profile.
        outer_parallelism: CU/SpMU pairs frontier vertices are spread across.
        write_backpointers: Whether to maintain the parent-pointer array
            (disabled for the Graphicionado comparison, Section 4.4).
        backend: ``"vectorized"`` (batch kernels) or ``"reference"`` (loops).

    Returns:
        An :class:`AppRun` whose output is the parent array (``-1`` for
        unreached vertices, ``source`` for itself).
    """
    check_backend(backend)
    n = adjacency.shape[0]
    if not 0 <= source < n:
        raise WorkloadError("source vertex out of range")
    # Outgoing adjacency in CSR form: for a frontier vertex we need its
    # out-neighbours (the paper stores the graph in CSC of the transposed
    # orientation; the traversal semantics are identical).
    graph = CSRMatrix.from_coo_arrays(
        (n, n), adjacency.rows, adjacency.cols, np.ones(adjacency.nnz)
    )
    reached = np.zeros(n, dtype=bool)
    parent = np.full(n, -1, dtype=np.int64)
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    reached[source] = True
    parent[source] = source

    row_pointers = graph.row_pointers
    col_indices = graph.col_indices

    levels = 0
    edges_traversed = 0
    vector_slots = 0
    frontier_scan = zero_cost()
    tiles = outer_parallelism
    tile_work = np.zeros(tiles, dtype=np.float64)
    cross_requests = 0
    nodes_per_tile = max(1, n // tiles)

    while frontier.any():
        levels += 1
        frontier_vertices = np.nonzero(frontier)[0]
        frontier_scan = frontier_scan.merge(scan_cost_single(frontier_vertices, n))
        next_frontier = np.zeros(n, dtype=bool)
        if backend == BACKEND_REFERENCE:
            trip_counts = []
            for slot, s in enumerate(frontier_vertices.tolist()):
                start, end = row_pointers[s], row_pointers[s + 1]
                neighbours = col_indices[start:end]
                trip_counts.append(int(neighbours.size))
                edges_traversed += int(neighbours.size)
                tile_work[slot % tiles] += max(1, neighbours.size)
                if neighbours.size:
                    owner = np.minimum(neighbours // nodes_per_tile, tiles - 1)
                    cross_requests += int(np.count_nonzero(owner != (slot % tiles)))
                    fresh = ~reached[neighbours]
                    fresh_neighbours = neighbours[fresh]
                    if write_backpointers and fresh_neighbours.size:
                        parent[fresh_neighbours] = s
                    next_frontier[fresh_neighbours] = True
                    reached[fresh_neighbours] = True
            vector_slots += vector_slots_for(trip_counts)
        else:
            flat, lengths = expand_slices(row_pointers, frontier_vertices)
            neighbours = col_indices[flat]
            vector_slots += vector_slots_batch(lengths)
            edges_traversed += int(lengths.sum())
            slots = np.arange(frontier_vertices.size, dtype=np.int64) % tiles
            tile_work += np.bincount(
                slots, weights=np.maximum(1, lengths), minlength=tiles
            )
            owner = np.minimum(neighbours // nodes_per_tile, tiles - 1)
            cross_requests += int(
                np.count_nonzero(owner != np.repeat(slots, lengths))
            )
            fresh = ~reached[neighbours]
            # First edge to each fresh vertex claims it, exactly as the
            # sequential visit order does (np.unique keeps first occurrence).
            claimed, claim_idx = np.unique(neighbours[fresh], return_index=True)
            if write_backpointers and claimed.size:
                parent[claimed] = np.repeat(frontier_vertices, lengths)[fresh][claim_idx]
            next_frontier[claimed] = True
            reached[claimed] = True
        frontier = next_frontier

    updates_per_edge = 3 if write_backpointers else 2
    profile = WorkloadProfile(
        app="bfs",
        dataset=dataset,
        compute_iterations=edges_traversed,
        vector_slots=vector_slots,
        scan_cycles=frontier_scan.cycles,
        scan_empty_cycles=frontier_scan.empty_cycles,
        scan_elements=frontier_scan.elements,
        sram_random_reads=edges_traversed,  # Rch[d] checks
        sram_random_updates=updates_per_edge * edges_traversed,
        dram_stream_read_bytes=4.0 * (edges_traversed + n + 1),
        dram_stream_write_bytes=4.0 * (n if write_backpointers else n // 32 + 1),
        pointer_stream_bytes=4.0 * edges_traversed,
        pointer_compression_ratio=_pointer_compression(col_indices),
        tile_work=tile_work.tolist(),
        cross_tile_request_fraction=cross_requests / max(1, edges_traversed),
        sequential_rounds=levels,
        pipelinable=False,
        outer_parallelism=outer_parallelism,
        extra={
            "levels": float(levels),
            "edges_traversed": float(edges_traversed),
            "reached": float(int(reached.sum())),
        },
    )
    return AppRun(output=parent, profile=profile)


def reference_bfs_levels(adjacency: COOMatrix, source: int = 0) -> np.ndarray:
    """Reference BFS level per vertex (``-1`` if unreachable).

    Used to validate the frontier implementation: a vertex's parent in the
    frontier BFS must sit exactly one level above it.
    """
    n = adjacency.shape[0]
    graph = CSRMatrix.from_coo_arrays(
        (n, n), adjacency.rows, adjacency.cols, np.ones(adjacency.nnz)
    )
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    current = [source]
    depth = 0
    while current:
        depth += 1
        nxt = []
        for s in current:
            cols, _ = graph.row_slice(s)
            for d in cols.tolist():
                if level[d] < 0:
                    level[d] = depth
                    nxt.append(d)
        current = nxt
    return level


@register_app("bfs", datasets=GRAPH_DATASET_NAMES, run=bfs, order=70, context_fields=("scale",))
def _prepare_bfs(dataset: str, context: RunContext) -> dict:
    """BFS inputs: the scaled graph and its highest-out-degree source."""
    generated = load_dataset(dataset, scale=context.scale)
    return {
        "adjacency": generated.matrix,
        "source": best_source(generated.matrix),
        "dataset": generated.name,
    }
