"""Single-source shortest paths with frontier relaxation (Table 2).

SSSP keeps a dense distance array, a back-pointer array, and a frontier
bitset. Every round it scans the frontier, relaxes each frontier vertex's
out-edges, and re-inserts improved vertices into the next frontier:

    nd = Dist[s] + G[s][d]
    Ptr[d] = Dist[d] > nd ? s : Ptr[d]
    Fr[d] |= Dist[d] > nd
    Dist[d] = min(Dist[d], nd)            (min-report-changed)

The distance update must be *address ordered*: two relaxations of the same
vertex in one round must not be reordered arbitrarily, which is why SSSP is
one of the paper's motivating cases for the ADDRESS_ORDERED SpMU mode.
Like BFS, rounds cannot be pipelined.

Candidate distances within a round are computed from the round's *starting*
distances (Bellman-Ford / Jacobi semantics): a frontier vertex improved
mid-round re-enters the next frontier rather than re-relaxing immediately.
This makes every round a pure function of the round's input state, so the
reference loop and the vectorized kernels walk identical rounds and produce
identical profiles -- the property the backend-equivalence suite asserts.
"""

from __future__ import annotations

import numpy as np

from ..core.ordering import OrderingMode
from ..errors import WorkloadError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..runtime.registry import RunContext, register_app
from ..workloads import GRAPH_DATASET_NAMES, load_dataset
from .common import BACKEND_REFERENCE, AppRun, best_source, check_backend, expand_slices
from .profile import WorkloadProfile, vector_slots_batch, vector_slots_for
from .scan_model import scan_cost_single, zero_cost
from .spmv import DEFAULT_OUTER_PARALLELISM, _pointer_compression


def sssp(
    adjacency: COOMatrix,
    source: int = 0,
    dataset: str = "synthetic",
    outer_parallelism: int = DEFAULT_OUTER_PARALLELISM,
    write_backpointers: bool = True,
    max_rounds: int = 10_000,
    backend: str = "vectorized",
) -> AppRun:
    """Frontier-based SSSP (Bellman-Ford style) from ``source``.

    Args:
        adjacency: Weighted directed graph in COO form (values are weights).
        source: Start vertex.
        dataset: Dataset label for the profile.
        outer_parallelism: CU/SpMU pairs frontier vertices are spread across.
        write_backpointers: Whether to maintain parent pointers (disabled
            for the Graphicionado comparison).
        max_rounds: Safety bound on relaxation rounds.
        backend: ``"vectorized"`` (batch kernels) or ``"reference"`` (loops).

    Returns:
        An :class:`AppRun` whose output is the distance array (``inf`` for
        unreachable vertices).
    """
    check_backend(backend)
    n = adjacency.shape[0]
    if not 0 <= source < n:
        raise WorkloadError("source vertex out of range")
    if np.any(adjacency.values < 0):
        raise WorkloadError("SSSP requires non-negative edge weights")
    graph = CSRMatrix.from_coo_arrays((n, n), adjacency.rows, adjacency.cols, adjacency.values)
    distance = np.full(n, np.inf, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    distance[source] = 0.0
    parent[source] = source
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True

    row_pointers = graph.row_pointers
    col_indices = graph.col_indices
    values = graph.values

    rounds = 0
    relaxations = 0
    vector_slots = 0
    frontier_scan = zero_cost()
    tiles = outer_parallelism
    tile_work = np.zeros(tiles, dtype=np.float64)
    cross_requests = 0
    nodes_per_tile = max(1, n // tiles)

    while frontier.any():
        rounds += 1
        if rounds > max_rounds:
            raise WorkloadError("SSSP did not converge within max_rounds")
        frontier_vertices = np.nonzero(frontier)[0]
        frontier_scan = frontier_scan.merge(scan_cost_single(frontier_vertices, n))
        next_frontier = np.zeros(n, dtype=bool)
        snapshot = distance.copy()  # round-start distances (see module doc)
        if backend == BACKEND_REFERENCE:
            trip_counts = []
            for slot, s in enumerate(frontier_vertices.tolist()):
                start, end = row_pointers[s], row_pointers[s + 1]
                neighbours = col_indices[start:end]
                weights = values[start:end]
                trip_counts.append(int(neighbours.size))
                relaxations += int(neighbours.size)
                tile_work[slot % tiles] += max(1, neighbours.size)
                if not neighbours.size:
                    continue
                owner = np.minimum(neighbours // nodes_per_tile, tiles - 1)
                cross_requests += int(np.count_nonzero(owner != (slot % tiles)))
                candidate = snapshot[s] + weights
                improved = candidate < distance[neighbours]
                improved_vertices = neighbours[improved]
                if improved_vertices.size:
                    # Same-destination relaxations within a round must apply
                    # the minimum; emulate the address-ordered RMW by
                    # reducing first.
                    order = np.argsort(candidate[improved], kind="stable")
                    for idx in order.tolist():
                        d = int(improved_vertices[idx])
                        nd = float(candidate[improved][idx])
                        if nd < distance[d]:
                            distance[d] = nd
                            if write_backpointers:
                                parent[d] = s
                            next_frontier[d] = True
            vector_slots += vector_slots_for(trip_counts)
        else:
            flat, lengths = expand_slices(row_pointers, frontier_vertices)
            neighbours = col_indices[flat]
            vector_slots += vector_slots_batch(lengths)
            relaxations += int(lengths.sum())
            slots = np.arange(frontier_vertices.size, dtype=np.int64) % tiles
            tile_work += np.bincount(
                slots, weights=np.maximum(1, lengths), minlength=tiles
            )
            owner = np.minimum(neighbours // nodes_per_tile, tiles - 1)
            cross_requests += int(
                np.count_nonzero(owner != np.repeat(slots, lengths))
            )
            sources = np.repeat(frontier_vertices, lengths)
            candidate = snapshot[sources] + values[flat]
            # Address-ordered reduction per destination: the winning parent
            # is the first edge (in visit order) achieving the round's
            # minimum candidate, matching the reference's running strict min.
            order = np.lexsort(
                (np.arange(neighbours.size), candidate, neighbours)
            )
            dest_sorted = neighbours[order]
            head = np.concatenate(
                ([True], dest_sorted[1:] != dest_sorted[:-1])
            ) if dest_sorted.size else np.empty(0, dtype=bool)
            winners = order[head]
            dests = neighbours[winners]
            best = candidate[winners]
            improved = best < distance[dests]
            dests, best, winners = dests[improved], best[improved], winners[improved]
            distance[dests] = best
            if write_backpointers:
                parent[dests] = sources[winners]
            next_frontier[dests] = True
        frontier = next_frontier

    updates_per_edge = 3 if write_backpointers else 2
    profile = WorkloadProfile(
        app="sssp",
        dataset=dataset,
        compute_iterations=relaxations,
        vector_slots=vector_slots,
        scan_cycles=frontier_scan.cycles,
        scan_empty_cycles=frontier_scan.empty_cycles,
        scan_elements=frontier_scan.elements,
        sram_random_reads=relaxations,  # Dist[d] reads
        sram_random_updates=updates_per_edge * relaxations,
        dram_stream_read_bytes=4.0 * (2 * relaxations + n + 1),
        dram_stream_write_bytes=4.0 * (2 * n if write_backpointers else n),
        pointer_stream_bytes=4.0 * relaxations,
        pointer_compression_ratio=_pointer_compression(col_indices),
        tile_work=tile_work.tolist(),
        cross_tile_request_fraction=cross_requests / max(1, relaxations),
        sequential_rounds=rounds,
        pipelinable=False,
        outer_parallelism=outer_parallelism,
        extra={"rounds": float(rounds), "relaxations": float(relaxations)},
    )
    profile.extra["required_ordering"] = float(OrderingMode.ADDRESS_ORDERED is not None)
    return AppRun(output=distance, profile=profile)


def reference_sssp(adjacency: COOMatrix, source: int = 0) -> np.ndarray:
    """Dijkstra reference distances used to validate the frontier SSSP."""
    import heapq

    n = adjacency.shape[0]
    graph = CSRMatrix.from_coo_arrays((n, n), adjacency.rows, adjacency.cols, adjacency.values)
    distance = np.full(n, np.inf, dtype=np.float64)
    distance[source] = 0.0
    heap = [(0.0, source)]
    visited = np.zeros(n, dtype=bool)
    while heap:
        dist, vertex = heapq.heappop(heap)
        if visited[vertex]:
            continue
        visited[vertex] = True
        cols, weights = graph.row_slice(vertex)
        for d, w in zip(cols.tolist(), weights.tolist()):
            nd = dist + w
            if nd < distance[d]:
                distance[d] = nd
                heapq.heappush(heap, (nd, d))
    return distance


@register_app("sssp", datasets=GRAPH_DATASET_NAMES, run=sssp, order=80, context_fields=("scale",))
def _prepare_sssp(dataset: str, context: RunContext) -> dict:
    """SSSP inputs: the scaled graph and its highest-out-degree source."""
    generated = load_dataset(dataset, scale=context.scale)
    return {
        "adjacency": generated.matrix,
        "source": best_source(generated.matrix),
        "dataset": generated.name,
    }
