"""Row-product (Gustavson) sparse matrix-matrix multiply (Section 2.4).

For every output row ``i``:

1. loop over the non-zero columns ``j`` of ``A``'s row ``i``;
2. fetch ``B``'s row ``j`` and union its occupancy into a bitset ``Val[i]``
   that marks which output columns will be non-zero;
3. intersect each fetched row with the output indices and accumulate
   ``C[i][k] += A[i][j] * B[j][k]`` directly into a compressed local tile;
4. sparse-iterate ``Val[i]`` to read the compressed tile out, swap it with
   zero for the next row, and write the row to DRAM.

The bitset updates and compressed-tile accumulations are SpMU random
read-modify-writes; the union/intersection scans are bit-vector scanner
work; the row-pointer prefix sum is a dense reduction.
"""

from __future__ import annotations

import numpy as np

from ..core.scanner import ScanMode
from ..errors import WorkloadError
from ..formats.csr import CSRMatrix
from ..formats.convert import to_csr
from ..runtime.registry import RunContext, register_app
from ..workloads import SPMSPM_DATASET_NAMES, load_dataset
from .common import (
    BACKEND_REFERENCE,
    AppRun,
    check_backend,
    expand_slices,
    tile_rows_by_nnz,
    tile_work_from_partition,
)
from .profile import WorkloadProfile, vector_slots_batch, vector_slots_for
from .scan_model import (
    scan_cost_growing_unions,
    scan_cost_pair,
    scan_cost_rows,
    scan_cost_single,
    zero_cost,
)
from .spmv import DEFAULT_OUTER_PARALLELISM, _pointer_compression


def spmspm(
    matrix_a: CSRMatrix,
    matrix_b: CSRMatrix,
    dataset: str = "synthetic",
    outer_parallelism: int = DEFAULT_OUTER_PARALLELISM,
    backend: str = "vectorized",
) -> AppRun:
    """Compute ``C = A @ B`` with Gustavson's row-product algorithm.

    Returns an :class:`AppRun` whose output is the dense product (for
    validation against ``A.to_dense() @ B.to_dense()``).
    """
    check_backend(backend)
    if matrix_a.shape[1] != matrix_b.shape[0]:
        raise WorkloadError("inner dimensions must agree")
    if backend == BACKEND_REFERENCE:
        state = _spmspm_reference(matrix_a, matrix_b)
    else:
        state = _spmspm_vectorized(matrix_a, matrix_b)
    (
        output,
        scan_total,
        multiplies,
        bitset_updates,
        accumulator_updates,
        output_nnz,
        b_rows_fetched,
        b_row_bytes,
        vector_slots,
    ) = state
    rows_out = matrix_a.shape[0]

    partitioning = tile_rows_by_nnz(matrix_a, outer_parallelism)
    profile = WorkloadProfile(
        app="spmspm",
        dataset=dataset,
        compute_iterations=multiplies,
        vector_slots=vector_slots,
        scan_cycles=scan_total.cycles,
        scan_empty_cycles=scan_total.empty_cycles,
        scan_elements=scan_total.elements,
        sram_random_reads=matrix_a.nnz,
        sram_random_updates=bitset_updates + accumulator_updates,
        dram_stream_read_bytes=4.0 * (2 * matrix_a.nnz + rows_out + 1) + b_row_bytes,
        dram_stream_write_bytes=4.0 * (2 * output_nnz + rows_out + 1),
        pointer_stream_bytes=4.0 * (matrix_a.nnz + b_rows_fetched),
        pointer_compression_ratio=_pointer_compression(matrix_b.col_indices),
        tile_work=tile_work_from_partition(partitioning),
        cross_tile_request_fraction=0.0,  # each output row is produced locally
        pipelinable=True,
        outer_parallelism=outer_parallelism,
        extra={
            "multiplies": float(multiplies),
            "output_nnz": float(output_nnz),
            "b_rows_fetched": float(b_rows_fetched),
        },
    )
    return AppRun(output=output, profile=profile)


def _spmspm_reference(matrix_a: CSRMatrix, matrix_b: CSRMatrix):
    """The original nested row-product loop (reference profiling backend)."""
    rows_out = matrix_a.shape[0]
    cols_out = matrix_b.shape[1]
    output = np.zeros((rows_out, cols_out), dtype=np.float64)

    a_pointers, a_cols, a_vals = matrix_a.row_pointers, matrix_a.col_indices, matrix_a.values
    b_pointers, b_cols, b_vals = matrix_b.row_pointers, matrix_b.col_indices, matrix_b.values

    scan_total = zero_cost()
    multiplies = 0
    bitset_updates = 0
    accumulator_updates = 0
    output_nnz = 0
    b_rows_fetched = 0
    b_row_bytes = 0.0
    trip_counts = []

    for i in range(rows_out):
        a_start, a_end = a_pointers[i], a_pointers[i + 1]
        if a_start == a_end:
            trip_counts.append(0)
            continue
        accumulator = np.zeros(cols_out, dtype=np.float64)
        valid = np.zeros(cols_out, dtype=bool)
        row_union = np.empty(0, dtype=np.int64)
        for idx in range(a_start, a_end):
            j = int(a_cols[idx])
            a_value = float(a_vals[idx])
            b_start, b_end = b_pointers[j], b_pointers[j + 1]
            b_row_cols = b_cols[b_start:b_end]
            b_row_vals = b_vals[b_start:b_end]
            b_rows_fetched += 1
            b_row_bytes += 8.0 * b_row_cols.size
            trip_counts.append(int(b_row_cols.size))
            if not b_row_cols.size:
                continue
            # Step 3a/3b: union into the output bitset, intersect with the
            # already-valid entries to find where to accumulate.
            scan_total = scan_total.merge(
                scan_cost_pair(b_row_cols, row_union, cols_out, ScanMode.UNION)
            )
            row_union = np.union1d(row_union, b_row_cols)
            valid[b_row_cols] = True
            bitset_updates += int(b_row_cols.size)
            accumulator[b_row_cols] += a_value * b_row_vals
            accumulator_updates += int(b_row_cols.size)
            multiplies += int(b_row_cols.size)
        # Step 3c: read the compressed row back out via a sparse scan.
        scan_total = scan_total.merge(scan_cost_single(row_union, cols_out))
        output[i, valid] = accumulator[valid]
        output_nnz += int(np.count_nonzero(valid))

    return (
        output,
        scan_total,
        multiplies,
        bitset_updates,
        accumulator_updates,
        output_nnz,
        b_rows_fetched,
        b_row_bytes,
        vector_slots_for(trip_counts),
    )


def _spmspm_vectorized(matrix_a: CSRMatrix, matrix_b: CSRMatrix):
    """Batch row-product profiling: one structural expansion, no row loop.

    Expands every (A non-zero, B row entry) pair into flat arrays ordered
    by (output row, inner step), from which the functional product, the
    output structure, and all scan/update counters follow in single numpy
    passes. The per-step union scans -- whose operand is the row's *growing*
    index set -- are costed exactly by :func:`scan_cost_growing_unions`
    using each output column's first step of appearance.
    """
    rows_out = matrix_a.shape[0]
    cols_out = matrix_b.shape[1]
    a_lengths = matrix_a.row_lengths()
    b_lengths = matrix_b.row_lengths()

    # Per A-non-zero: the fetched B row and its length (0 for empty rows).
    fetch_lengths = b_lengths[matrix_a.col_indices]
    multiplies = int(fetch_lengths.sum())
    b_rows_fetched = int(matrix_a.nnz)
    b_row_bytes = 8.0 * multiplies
    # One inner-loop instance per fetch, plus a zero-trip instance per
    # empty A row.
    empty_a_rows = int(np.count_nonzero(a_lengths == 0))
    vector_slots = empty_a_rows + vector_slots_batch(fetch_lengths)

    # Union steps skip empty B rows; number steps 1..k within each A row.
    a_row_of_nonzero = np.repeat(np.arange(rows_out, dtype=np.int64), a_lengths)
    step_mask = fetch_lengths > 0
    step_rows = a_row_of_nonzero[step_mask]
    steps_per_row = np.bincount(step_rows, minlength=rows_out)
    step_offsets = np.cumsum(steps_per_row) - steps_per_row
    step_ids = (
        np.arange(step_rows.size, dtype=np.int64) - step_offsets[step_rows] + 1
    )

    # Expand the fetched B rows: one entry per multiply, in (row, step) order.
    flat, lengths = expand_slices(
        matrix_b.row_pointers, matrix_a.col_indices[step_mask]
    )
    expanded_steps = np.repeat(step_ids, lengths)
    expanded_values = matrix_b.values[flat] * np.repeat(
        matrix_a.values[step_mask], lengths
    )
    # Dense (row, col) key per multiply, built from per-step row bases.
    keys = np.repeat(step_rows * cols_out, lengths) + matrix_b.col_indices[flat]

    # Output structure: distinct (row, col) pairs; their first step of
    # appearance drives the growing-union scan cost. The key space is the
    # output's dense index space -- already materialized as the dense output
    # -- so dedup by dense scatter rather than by sorting the expansion:
    # the expansion is ordered by (row, step), so assigning in reverse
    # leaves each key's earliest step in place, and a non-zero first step
    # marks an occupied key.
    key_space = rows_out * cols_out
    first_by_key = np.zeros(key_space, dtype=np.int64)
    first_by_key[keys[::-1]] = expanded_steps[::-1]
    union_keys = np.flatnonzero(first_by_key)
    union_rows = union_keys // cols_out
    union_cols = union_keys % cols_out
    first_steps = first_by_key[union_keys]
    output_nnz = int(union_keys.size)

    scan_total = scan_cost_growing_unions(
        union_rows, union_cols, first_steps, steps_per_row, cols_out
    )
    # Step 3c readback: every non-empty A row scans its final union (which
    # is empty when all its fetched B rows were empty).
    nonempty_a = np.flatnonzero(a_lengths > 0)
    row_remap = np.zeros(rows_out, dtype=np.int64)
    row_remap[nonempty_a] = np.arange(nonempty_a.size)
    scan_total = scan_total.merge(
        scan_cost_rows(row_remap[union_rows], union_cols, int(nonempty_a.size), cols_out)
    )

    # Functional product: accumulate duplicates per (row, col) in step order.
    output = np.bincount(keys, weights=expanded_values, minlength=key_space).reshape(
        rows_out, cols_out
    )

    return (
        output,
        scan_total,
        multiplies,
        multiplies,  # bitset updates: one per accumulated element
        multiplies,  # accumulator updates likewise
        output_nnz,
        b_rows_fetched,
        b_row_bytes,
        vector_slots,
    )


def reference_spmspm(matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> np.ndarray:
    """Dense reference product used for validation."""
    return matrix_a.to_dense() @ matrix_b.to_dense()


@register_app("spmspm", datasets=SPMSPM_DATASET_NAMES, run=spmspm, order=100, context_fields=())
def _prepare_spmspm(dataset: str, context: RunContext) -> dict:
    """SpMSpM inputs: ``A @ A`` at full scale (Table 6 matrices are small)."""
    generated = load_dataset(dataset, scale=1.0)
    csr = to_csr(generated.matrix)
    return {"matrix_a": csr, "matrix_b": csr, "dataset": generated.name}
