"""Row-product (Gustavson) sparse matrix-matrix multiply (Section 2.4).

For every output row ``i``:

1. loop over the non-zero columns ``j`` of ``A``'s row ``i``;
2. fetch ``B``'s row ``j`` and union its occupancy into a bitset ``Val[i]``
   that marks which output columns will be non-zero;
3. intersect each fetched row with the output indices and accumulate
   ``C[i][k] += A[i][j] * B[j][k]`` directly into a compressed local tile;
4. sparse-iterate ``Val[i]`` to read the compressed tile out, swap it with
   zero for the next row, and write the row to DRAM.

The bitset updates and compressed-tile accumulations are SpMU random
read-modify-writes; the union/intersection scans are bit-vector scanner
work; the row-pointer prefix sum is a dense reduction.
"""

from __future__ import annotations

import numpy as np

from ..core.scanner import ScanMode
from ..errors import WorkloadError
from ..formats.csr import CSRMatrix
from ..formats.convert import to_csr
from ..runtime.registry import RunContext, register_app
from ..workloads import SPMSPM_DATASET_NAMES, load_dataset
from .common import AppRun, tile_rows_by_nnz, tile_work_from_partition
from .profile import WorkloadProfile, vector_slots_for
from .scan_model import scan_cost_pair, scan_cost_single, zero_cost
from .spmv import DEFAULT_OUTER_PARALLELISM, _pointer_compression


def spmspm(
    matrix_a: CSRMatrix,
    matrix_b: CSRMatrix,
    dataset: str = "synthetic",
    outer_parallelism: int = DEFAULT_OUTER_PARALLELISM,
) -> AppRun:
    """Compute ``C = A @ B`` with Gustavson's row-product algorithm.

    Returns an :class:`AppRun` whose output is the dense product (for
    validation against ``A.to_dense() @ B.to_dense()``).
    """
    if matrix_a.shape[1] != matrix_b.shape[0]:
        raise WorkloadError("inner dimensions must agree")
    rows_out = matrix_a.shape[0]
    cols_out = matrix_b.shape[1]
    output = np.zeros((rows_out, cols_out), dtype=np.float64)

    a_pointers, a_cols, a_vals = matrix_a.row_pointers, matrix_a.col_indices, matrix_a.values
    b_pointers, b_cols, b_vals = matrix_b.row_pointers, matrix_b.col_indices, matrix_b.values

    scan_total = zero_cost()
    multiplies = 0
    bitset_updates = 0
    accumulator_updates = 0
    output_nnz = 0
    b_rows_fetched = 0
    b_row_bytes = 0.0
    trip_counts = []

    for i in range(rows_out):
        a_start, a_end = a_pointers[i], a_pointers[i + 1]
        if a_start == a_end:
            trip_counts.append(0)
            continue
        accumulator = np.zeros(cols_out, dtype=np.float64)
        valid = np.zeros(cols_out, dtype=bool)
        row_union = np.empty(0, dtype=np.int64)
        for idx in range(a_start, a_end):
            j = int(a_cols[idx])
            a_value = float(a_vals[idx])
            b_start, b_end = b_pointers[j], b_pointers[j + 1]
            b_row_cols = b_cols[b_start:b_end]
            b_row_vals = b_vals[b_start:b_end]
            b_rows_fetched += 1
            b_row_bytes += 8.0 * b_row_cols.size
            trip_counts.append(int(b_row_cols.size))
            if not b_row_cols.size:
                continue
            # Step 3a/3b: union into the output bitset, intersect with the
            # already-valid entries to find where to accumulate.
            scan_total = scan_total.merge(
                scan_cost_pair(b_row_cols, row_union, cols_out, ScanMode.UNION)
            )
            row_union = np.union1d(row_union, b_row_cols)
            valid[b_row_cols] = True
            bitset_updates += int(b_row_cols.size)
            accumulator[b_row_cols] += a_value * b_row_vals
            accumulator_updates += int(b_row_cols.size)
            multiplies += int(b_row_cols.size)
        # Step 3c: read the compressed row back out via a sparse scan.
        scan_total = scan_total.merge(scan_cost_single(row_union, cols_out))
        output[i, valid] = accumulator[valid]
        output_nnz += int(np.count_nonzero(valid))

    partitioning = tile_rows_by_nnz(matrix_a, outer_parallelism)
    profile = WorkloadProfile(
        app="spmspm",
        dataset=dataset,
        compute_iterations=multiplies,
        vector_slots=vector_slots_for(trip_counts),
        scan_cycles=scan_total.cycles,
        scan_empty_cycles=scan_total.empty_cycles,
        scan_elements=scan_total.elements,
        sram_random_reads=matrix_a.nnz,
        sram_random_updates=bitset_updates + accumulator_updates,
        dram_stream_read_bytes=4.0 * (2 * matrix_a.nnz + rows_out + 1) + b_row_bytes,
        dram_stream_write_bytes=4.0 * (2 * output_nnz + rows_out + 1),
        pointer_stream_bytes=4.0 * (matrix_a.nnz + b_rows_fetched),
        pointer_compression_ratio=_pointer_compression(b_cols),
        tile_work=tile_work_from_partition(partitioning),
        cross_tile_request_fraction=0.0,  # each output row is produced locally
        pipelinable=True,
        outer_parallelism=outer_parallelism,
        extra={
            "multiplies": float(multiplies),
            "output_nnz": float(output_nnz),
            "b_rows_fetched": float(b_rows_fetched),
        },
    )
    return AppRun(output=output, profile=profile)


def reference_spmspm(matrix_a: CSRMatrix, matrix_b: CSRMatrix) -> np.ndarray:
    """Dense reference product used for validation."""
    return matrix_a.to_dense() @ matrix_b.to_dense()


@register_app("spmspm", datasets=SPMSPM_DATASET_NAMES, run=spmspm, order=100, context_fields=())
def _prepare_spmspm(dataset: str, context: RunContext) -> dict:
    """SpMSpM inputs: ``A @ A`` at full scale (Table 6 matrices are small)."""
    generated = load_dataset(dataset, scale=1.0)
    csr = to_csr(generated.matrix)
    return {"matrix_a": csr, "matrix_b": csr, "dataset": generated.name}
