"""Applications expressed with Capstan's sparse-iteration primitives (Table 2).

Importing this package also populates the experiment registry
(:mod:`repro.runtime.registry`): each application module registers an
``AppSpec`` naming its Table 6 datasets and input preparation, which is what
``repro.eval`` and the ``repro-eval`` runner dispatch on.
"""

from .bfs import bfs, reference_bfs_levels
from .bicgstab import BiCGStabResult, bicgstab
from .common import BACKENDS, AppRun, best_source, check_backend
from .conv import sparse_convolution
from .pagerank import pagerank_edge, pagerank_pull, reference_pagerank
from .profile import WorkloadProfile, vector_slots_batch, vector_slots_for
from .scan_model import (
    ScanCost,
    data_scan_cost,
    scan_cost_growing_unions,
    scan_cost_pair,
    scan_cost_rows,
    scan_cost_single,
)
from .spadd import reference_add, sparse_add
from .spmspm import reference_spmspm, spmspm
from .spmv import reference_spmv, spmv_coo, spmv_csc, spmv_csr
from .sssp import reference_sssp, sssp
from .timing import CapstanPlatform, default_platform, estimate_cycles, ideal_platform, run_metrics

__all__ = [
    "AppRun",
    "BACKENDS",
    "best_source",
    "check_backend",
    "WorkloadProfile",
    "vector_slots_for",
    "vector_slots_batch",
    "ScanCost",
    "scan_cost_single",
    "scan_cost_pair",
    "scan_cost_rows",
    "scan_cost_growing_unions",
    "data_scan_cost",
    "spmv_csr",
    "spmv_coo",
    "spmv_csc",
    "reference_spmv",
    "pagerank_pull",
    "pagerank_edge",
    "reference_pagerank",
    "bfs",
    "reference_bfs_levels",
    "sssp",
    "reference_sssp",
    "sparse_add",
    "reference_add",
    "spmspm",
    "reference_spmspm",
    "sparse_convolution",
    "bicgstab",
    "BiCGStabResult",
    "CapstanPlatform",
    "default_platform",
    "ideal_platform",
    "estimate_cycles",
    "run_metrics",
]
