"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures. The
functional application runs are collected once per session (they are the
expensive part) and every benchmark then measures the harness that turns
those profiles into the paper's rows.
"""

from __future__ import annotations

import pytest

from repro.eval import collect_profiles

#: Dataset scale used by the benchmark harness (see DESIGN.md for the
#: substitution policy; absolute runtimes are not comparable to the paper,
#: only the relative shapes are).
BENCH_SCALE = 1.0 / 128.0


@pytest.fixture(scope="session")
def profile_set():
    """Profiles of every application on its three Table 6 datasets."""
    return collect_profiles(scale=BENCH_SCALE)


def run_once(benchmark, function, *args, **kwargs):
    """Run a harness exactly once under pytest-benchmark timing.

    The table/figure harnesses are deterministic and moderately expensive,
    so a single round keeps the whole benchmark suite tractable while still
    recording a timing figure for each experiment.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
