"""Benchmarks for the component-level tables and figures.

* Table 4  -- SpMU bank utilization vs queue depth / crossbar / priorities.
* Table 5  -- scanner area.
* Table 8  -- Capstan vs Plasticine area and power.
* Figure 4 -- ordering-mode bank utilization on a random request trace.
* Figure 6 -- scanner width / output-vectorization sensitivity.

Each benchmark prints the regenerated rows next to the paper's published
numbers so the output is a self-contained reproduction record.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import (
    figure4_ordering_trace,
    figure6_scanner_sensitivity,
    format_mapping,
    format_table,
    paper_vs_measured,
    table4_spmu_throughput,
    table5_scanner_area,
    table8_area,
)


def test_table4_spmu_throughput(benchmark):
    rows = run_once(
        benchmark, table4_spmu_throughput, depths=(8, 16, 32), crossbars=(16, 32), vectors=120
    )
    print()
    print(
        format_table(
            rows,
            [
                "depth",
                "crossbar",
                "measured_1pri_pct",
                "paper_1pri_pct",
                "measured_3pri_pct",
                "paper_3pri_pct",
            ],
            title="Table 4: SpMU bank utilization (%)",
        )
    )
    deep = next(r for r in rows if r["depth"] == 16 and r["crossbar"] == "16x16")
    shallow = next(r for r in rows if r["depth"] == 8 and r["crossbar"] == "16x16")
    assert deep["measured_3pri_pct"] > shallow["measured_1pri_pct"]


def test_table5_scanner_area(benchmark):
    rows = run_once(benchmark, table5_scanner_area)
    print()
    print(
        format_table(
            rows, ["width", "out1_um2", "out4_um2", "out16_um2"], "Table 5: scanner area (um^2)"
        )
    )
    assert rows[1]["out16_um2"] == 19898


def test_table8_area(benchmark):
    result = run_once(benchmark, table8_area)
    print()
    print(
        format_mapping(
            {
                "capstan_total_mm2": result["capstan"]["total_mm2"],
                "plasticine_total_mm2": result["plasticine"]["total_mm2"],
                "area_overhead": result["area_overhead"],
                "paper_area_overhead": result["paper_area_overhead"],
                "power_overhead": result["power_overhead"],
                "paper_power_overhead": result["paper_power_overhead"],
            },
            title="Table 8: area and power vs Plasticine",
        )
    )
    assert abs(result["area_overhead"] - 0.16) < 0.03


def test_figure4_ordering_trace(benchmark):
    result = run_once(benchmark, figure4_ordering_trace, vectors=120)
    print()
    print(
        paper_vs_measured(
            result["measured_utilization_pct"],
            result["paper_utilization_pct"],
            title="Figure 4: bank utilization by ordering mode (%)",
        )
    )
    measured = result["measured_utilization_pct"]
    assert measured["unordered"] > measured["arbitrated"]


def test_figure6_scanner_sensitivity(benchmark):
    result = run_once(benchmark, figure6_scanner_sensitivity, scale=1 / 256)
    print()
    print("Figure 6a: slowdown vs bits scanned per cycle")
    for app, series in result["bit_slowdown"].items():
        print(f"  {app:>8}: " + "  ".join(f"{v:5.2f}" for v in series))
    print("Figure 6c: slowdown vs scan output vectorization")
    for app, series in result["output_slowdown"].items():
        print(f"  {app:>8}: " + "  ".join(f"{v:5.2f}" for v in series))
    # Scalar (1-bit) scanning must be much slower than the 512-bit scanner.
    for app, series in result["bit_slowdown"].items():
        assert series[0] >= series[-1]
