"""Chaos smoke: a sweep survives injected worker faults byte-for-byte.

The end-to-end fault-injection check the robustness work promises, run
as one script (CI's ``chaos-smoke`` job):

1. An **unsharded** serial :class:`ExperimentRunner` fills profile cache A.
2. The same grid is submitted as a sharded job and driven by a *child*
   process through the **subprocess executor** into cache B with a
   seeded :class:`FaultPlan` installed: a worker crash, a hang cut by
   the unit timeout, and a malformed protocol line. Mid-sweep the child
   itself exits via an ``exit_mid_wave`` fault, simulating a dying
   driver.
3. The job is resumed in-process with a clean executor. Units committed
   before the driver died must keep their attempt counts (zero
   re-execution), no unit may be dead or lost, and cache B must end up
   **byte-identical** to cache A.

Exit code 0 means every check held.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py [--scale 1/512] [--apps spmv-csr ...]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime.cache import ProfileCache  # noqa: E402
from repro.runtime.faults import ENV_FAULT_PLAN, Fault, FaultPlan  # noqa: E402
from repro.runtime.jobs import UNIT_DONE, JobSpec, JobStore  # noqa: E402
from repro.runtime.registry import RunContext  # noqa: E402
from repro.runtime.runner import ExperimentRunner  # noqa: E402

DRIVER_EXIT_CODE = 23

# The child wraps the subprocess executor in a FaultyExecutor so the
# driver-level exit_mid_wave fault fires in the child, while the
# worker-level faults (crash/hang/malformed_line) reach the workers
# through the REPRO_FAULT_PLAN environment seam.
_CHILD_CODE = """
import sys
from pathlib import Path
from repro.runtime.executors import SubprocessExecutor
from repro.runtime.faults import Fault, FaultPlan, FaultyExecutor
from repro.runtime.jobs import JobStore

driver_plan = FaultPlan(
    [Fault(kind="exit_mid_wave", unit_index=2, exit_code=int(sys.argv[4]))],
    state_dir=sys.argv[3],
)
executor = FaultyExecutor(
    SubprocessExecutor(workers=1, timeout_s=30.0, retries=2, backoff_s=0.05),
    driver_plan,
)
with JobStore(Path(sys.argv[1])) as store:
    store.run_job(int(sys.argv[2]), executor)
"""


def _child_env(worker_plan: FaultPlan) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    env[ENV_FAULT_PLAN] = worker_plan.to_json()
    return env


def _fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="1/512", help="dataset scale (default 1/512)")
    parser.add_argument(
        "--apps",
        nargs="+",
        default=["spmv-csr", "spmv-coo"],
        help="applications to sweep (default: two SpMV variants, six units)",
    )
    args = parser.parse_args(argv)
    numerator, _, denominator = args.scale.partition("/")
    scale = float(numerator) / float(denominator) if denominator else float(numerator)
    context = RunContext(scale=scale)

    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        root = Path(tmp)
        cache_a, cache_b, db = root / "cache-a", root / "cache-b", root / "runs.sqlite"

        print(f"[1/4] unsharded serial reference run ({len(args.apps)} apps) ...")
        runner = ExperimentRunner(context=context, cache=ProfileCache(root=cache_a), workers=1)
        runner.run(apps=args.apps)

        spec = JobSpec.profile_grid(args.apps, context, cache_root=cache_b)
        with JobStore(db) as store:
            job_id = store.submit(spec).id

        # Worker-level faults, bounded across respawns by the state_dir.
        worker_plan = FaultPlan(
            [
                Fault(kind="crash", times=1),
                Fault(kind="hang", times=1),
                Fault(kind="malformed_line", times=1),
            ],
            seed=7,
            state_dir=str(root / "worker-faults"),
        )
        print(
            f"[2/4] sharded job {job_id} ({len(spec.units)} units) via a child "
            "driver under crash+hang+malformed faults ..."
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _CHILD_CODE,
                str(db),
                str(job_id),
                str(root / "driver-faults"),
                str(DRIVER_EXIT_CODE),
            ],
            env=_child_env(worker_plan),
            timeout=300,
        )
        if proc.returncode != DRIVER_EXIT_CODE:
            return _fail(
                f"child driver exited {proc.returncode}, expected the injected "
                f"exit_mid_wave code {DRIVER_EXIT_CODE}"
            )
        print(f"       child driver died with injected exit code {DRIVER_EXIT_CODE}")

        with JobStore(db) as store:
            done_before = {
                unit.seq: unit.attempts for unit in store.units(job_id, state=UNIT_DONE)
            }
            print(f"[3/4] resume: {len(done_before)} units survived the dead driver as done")
            from repro.runtime.executors import SubprocessExecutor

            summary = store.run_job(job_id, SubprocessExecutor(workers=2))
            if summary.state != "done":
                return _fail(f"resumed job ended {summary.state!r}: {summary.to_dict()}")
            if summary.dead:
                return _fail(f"{summary.dead} unit(s) dead-lettered during the smoke")
            for seq, attempts in done_before.items():
                unit = store.units(job_id)[seq]
                if unit.attempts != attempts:
                    return _fail(
                        f"unit {seq} re-executed on resume "
                        f"(attempts {attempts} -> {unit.attempts})"
                    )

        print("[4/4] comparing caches byte-for-byte ...")
        names_a = sorted(path.name for path in cache_a.glob("*.json"))
        names_b = sorted(path.name for path in cache_b.glob("*.json"))
        if not names_a or names_a != names_b:
            return _fail(f"cache key sets differ: {len(names_a)} vs {len(names_b)} entries")
        for name in names_a:
            if (cache_a / name).read_bytes() != (cache_b / name).read_bytes():
                return _fail(f"cache entry {name} differs between runs")

        print(
            f"PASS: {len(names_a)} profiles byte-identical under injected faults; "
            f"{len(done_before)} pre-crash units untouched on resume"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
