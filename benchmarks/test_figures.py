"""Benchmarks for the system-level figures.

* Figure 5a -- DRAM bandwidth sensitivity.
* Figure 5b -- on-chip area (outer-parallelism) sensitivity.
* Figure 5c -- DRAM compression sensitivity.
* Figure 7  -- execution-time stall breakdown per application.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import (
    figure5a_bandwidth_sensitivity,
    figure5b_area_sensitivity,
    figure5c_compression_sensitivity,
    figure7_stall_breakdown,
    format_series,
    format_table,
)


def test_figure5a_bandwidth_sensitivity(benchmark, profile_set):
    series = run_once(benchmark, figure5a_bandwidth_sensitivity, profile_set)
    print()
    print(format_series(series, "bandwidth_gbps", "Figure 5a: speedup vs DRAM bandwidth"))
    # Memory-bound applications keep scaling to HBM2-class bandwidth.
    for app in ("spmv-csr", "pagerank-pull", "pagerank-edge"):
        assert series[app][-1] > series[app][0]


def test_figure5b_area_sensitivity(benchmark, profile_set):
    series = run_once(benchmark, figure5b_area_sensitivity, profile_set)
    print()
    print(format_series(series, "parallelism", "Figure 5b: speedup vs outer parallelism"))
    for app, values in series.items():
        if app == "parallelism":
            continue
        assert values[-1] >= values[0]


def test_figure5c_compression_sensitivity(benchmark, profile_set):
    series = run_once(benchmark, figure5c_compression_sensitivity, profile_set)
    print()
    print(format_series(series, "bandwidth_gbps", "Figure 5c: speedup from DRAM compression"))
    # Pointer-heavy formats (COO, PR-Edge) benefit the most at low bandwidth.
    assert max(series["spmv-coo"]) >= max(series["conv"]) - 1e-6


def test_figure7_stall_breakdown(benchmark, profile_set):
    breakdown = run_once(benchmark, figure7_stall_breakdown, profile_set)
    print()
    rows = [
        {"app": app, **{k: 100 * v for k, v in fractions.items()}}
        for app, fractions in breakdown.items()
    ]
    print(
        format_table(
            rows,
            ["app", "active", "scan", "load_store", "vector_length", "imbalance"]
            + ["network", "sram", "dram"],
            "Figure 7: execution-time breakdown (%)",
        )
    )
    for fractions in breakdown.values():
        assert abs(sum(fractions.values()) - 1.0) < 1e-6
    # BFS/SSSP are network-bound (un-pipelinable levels); SpMSpM keeps high activity.
    assert breakdown["bfs"]["network"] > breakdown["spmspm"]["network"]
