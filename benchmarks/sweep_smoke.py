"""Sweep smoke: a killed sharded sweep resumes to the unsharded result.

The end-to-end durability check the job subsystem promises, run as one
script (CI's ``sweep-smoke`` job):

1. An **unsharded** serial :class:`ExperimentRunner` fills profile cache A.
2. The same grid is submitted as a sharded job and driven by a *child*
   process through the **subprocess executor** into cache B; the child is
   SIGKILL'd as soon as the first units land.
3. The job is resumed in-process. Units completed before the kill must
   keep ``attempts == 1`` (zero re-execution), and cache B must end up
   **byte-identical** to cache A.

Exit code 0 means every check held.

Usage::

    PYTHONPATH=src python benchmarks/sweep_smoke.py [--scale 1/512] [--apps spmv-csr ...]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime.cache import ProfileCache  # noqa: E402
from repro.runtime.executors import SubprocessExecutor  # noqa: E402
from repro.runtime.jobs import UNIT_DONE, JobSpec, JobStore  # noqa: E402
from repro.runtime.registry import RunContext  # noqa: E402
from repro.runtime.runner import ExperimentRunner  # noqa: E402

_CHILD_CODE = """
import sys
from pathlib import Path
from repro.runtime.executors import SubprocessExecutor
from repro.runtime.jobs import JobStore

with JobStore(Path(sys.argv[1])) as store:
    store.run_job(int(sys.argv[2]), SubprocessExecutor(workers=1))
"""


def _child_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def _fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="1/512", help="dataset scale (default 1/512)")
    parser.add_argument(
        "--apps",
        nargs="+",
        default=["spmv-csr", "spmv-coo"],
        help="applications to sweep (default: two SpMV variants, six units)",
    )
    args = parser.parse_args(argv)
    numerator, _, denominator = args.scale.partition("/")
    scale = float(numerator) / float(denominator) if denominator else float(numerator)
    context = RunContext(scale=scale)

    with tempfile.TemporaryDirectory(prefix="sweep-smoke-") as tmp:
        root = Path(tmp)
        cache_a, cache_b, db = root / "cache-a", root / "cache-b", root / "runs.sqlite"

        print(f"[1/4] unsharded serial reference run ({len(args.apps)} apps) ...")
        runner = ExperimentRunner(context=context, cache=ProfileCache(root=cache_a), workers=1)
        runner.run(apps=args.apps)

        spec = JobSpec.profile_grid(args.apps, context, cache_root=cache_b)
        with JobStore(db) as store:
            job_id = store.submit(spec).id
        print(f"[2/4] sharded job {job_id} ({len(spec.units)} units) via child process ...")
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD_CODE, str(db), str(job_id)],
            env=_child_env(),
        )
        deadline = time.perf_counter() + 120.0
        while time.perf_counter() < deadline:
            if child.poll() is not None or list(cache_b.glob("*.json")):
                break
            time.sleep(0.02)
        if child.poll() is None:
            os.kill(child.pid, signal.SIGKILL)
            print("       child SIGKILL'd mid-sweep")
        else:
            print("       child finished before the kill (fast machine); still checking")
        child.wait(timeout=10)

        with JobStore(db) as store:
            done_before = {
                unit.seq: unit.attempts for unit in store.units(job_id, state=UNIT_DONE)
            }
            print(f"[3/4] resume: {len(done_before)} units survived the kill as done")
            summary = store.run_job(job_id, SubprocessExecutor(workers=2))
            if summary.state != "done":
                return _fail(f"resumed job ended {summary.state!r}: {summary.to_dict()}")
            for seq, attempts in done_before.items():
                unit = store.units(job_id)[seq]
                if unit.attempts != attempts:
                    return _fail(
                        f"unit {seq} re-executed on resume "
                        f"(attempts {attempts} -> {unit.attempts})"
                    )

        print("[4/4] comparing caches byte-for-byte ...")
        names_a = sorted(path.name for path in cache_a.glob("*.json"))
        names_b = sorted(path.name for path in cache_b.glob("*.json"))
        if not names_a or names_a != names_b:
            return _fail(f"cache key sets differ: {len(names_a)} vs {len(names_b)} entries")
        for name in names_a:
            if (cache_a / name).read_bytes() != (cache_b / name).read_bytes():
                return _fail(f"cache entry {name} differs between runs")

        print(
            f"PASS: {len(names_a)} profiles byte-identical; "
            f"{len(done_before)} pre-kill units untouched on resume"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
