"""Benchmarks for the system-level tables.

* Table 9  -- SpMU architecture sensitivity (ideal / hash / linear x
  allocated / weak / arbitrated).
* Table 10 -- memory ordering-mode slowdowns.
* Table 11 -- shuffle (merge) network sensitivity.
* Table 12 -- end-to-end performance vs Plasticine, V100, and the CPU.
* Table 13 -- comparison against the ASIC baselines.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import (
    format_table,
    paper_vs_measured,
    table9_spmu_sensitivity,
    table10_ordering_modes,
    table11_shuffle_sensitivity,
    table12_performance,
    table13_asic_comparison,
)


def test_table9_spmu_sensitivity(benchmark, profile_set):
    result = run_once(benchmark, table9_spmu_sensitivity, profile_set)
    print()
    print(
        paper_vs_measured(
            result["gmean"],
            result["paper_gmean"],
            "Table 9: SpMU sensitivity (gmean, rel. to Capstan+hash)",
        )
    )
    gmean = result["gmean"]
    assert gmean["ideal"] <= gmean["capstan-hash"] <= gmean["arbitrated-linear"]


def test_table10_ordering_modes(benchmark, profile_set):
    result = run_once(benchmark, table10_ordering_modes, profile_set)
    print()
    print(
        paper_vs_measured(
            result["gmean"], result["paper_gmean"], "Table 10: ordering-mode slowdown (gmean)"
        )
    )
    assert result["gmean"]["fully-ordered"] >= result["gmean"]["address-ordered"] >= 1.0


def test_table11_shuffle_sensitivity(benchmark, profile_set):
    result = run_once(benchmark, table11_shuffle_sensitivity, profile_set)
    print()
    rows = [
        {"app": app, **modes}
        for app, modes in result["per_app"].items()
    ]
    print(
        format_table(
            rows,
            ["app", "none", "mrg-0", "mrg-1", "mrg-16"],
            "Table 11: shuffle sensitivity (rel. to Mrg-1)",
        )
    )
    for modes in result["per_app"].values():
        assert modes["none"] >= modes["mrg-16"] - 1e-6


def test_table12_performance(benchmark, profile_set):
    result = run_once(benchmark, table12_performance, profile_set)
    print()
    print(
        paper_vs_measured(
            result["gmean"],
            result["paper_gmean"],
            "Table 12: runtime normalized to Capstan-HBM2E (gmean)",
        )
    )
    rows = [{"app": app, **values} for app, values in result["per_app"].items()]
    print()
    print(
        format_table(
            rows,
            ["app", "capstan-ddr4", "plasticine-hbm2e", "gpu-v100", "cpu-xeon"],
            "Table 12 (per app, normalized to Capstan-HBM2E)",
        )
    )
    gmean = result["gmean"]
    assert gmean["cpu-xeon"] > gmean["gpu-v100"] > 1.0
    assert gmean["plasticine-hbm2e"] > 1.0
    assert gmean["capstan-ddr4"] > gmean["capstan-hbm2"] >= gmean["capstan-hbm2e"]


def test_table13_asic_comparison(benchmark, profile_set):
    result = run_once(benchmark, table13_asic_comparison, profile_set)
    print()
    print(
        paper_vs_measured(
            result["speedup"], result["paper"], "Table 13: Capstan speedup over ASIC baselines"
        )
    )
    assert result["speedup"]["matraptor"] > 1.0
    assert result["speedup"]["eie"] < result["speedup"]["matraptor"]
