"""Benchmark the experiment runner: cold vs. warm cache, serial vs. parallel.

Times full-grid ``collect_profiles`` wall time under four configurations --
cold serial, cold parallel, warm cache, and cache-disabled serial (the
pre-runtime baseline behaviour) -- and writes ``BENCH_runner.json`` at the
repository root to seed the performance trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py [--scale 1/256] [--workers 4]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.eval.experiments import collect_profiles
from repro.runtime.cache import ProfileCache


def _timed(**kwargs) -> float:
    start = time.perf_counter()
    collect_profiles(**kwargs)
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="1/256", help="dataset scale (default 1/256)")
    parser.add_argument("--workers", type=int, default=4, help="parallel pool size")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_runner.json"),
        help="where to write the benchmark record",
    )
    args = parser.parse_args(argv)
    if "/" in args.scale:
        numerator, _, denominator = args.scale.partition("/")
        scale = float(numerator) / float(denominator)
    else:
        scale = float(args.scale)

    with tempfile.TemporaryDirectory() as tmp_serial, tempfile.TemporaryDirectory() as tmp_par:
        uncached_s = _timed(scale=scale, workers=1, cache=False)
        cold_serial_s = _timed(scale=scale, workers=1, cache=ProfileCache(root=tmp_serial))
        warm_serial_s = _timed(scale=scale, workers=1, cache=ProfileCache(root=tmp_serial))
        cold_parallel_s = _timed(
            scale=scale, workers=args.workers, cache=ProfileCache(root=tmp_par)
        )

    record = {
        "benchmark": "collect_profiles full grid (11 apps x 3 datasets)",
        "scale": scale,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "uncached_serial_s": round(uncached_s, 3),
        "cold_serial_s": round(cold_serial_s, 3),
        "warm_serial_s": round(warm_serial_s, 3),
        "cold_parallel_s": round(cold_parallel_s, 3),
        "parallel_speedup": round(cold_serial_s / cold_parallel_s, 2),
        "warm_cache_speedup": round(cold_serial_s / warm_serial_s, 2),
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
