"""Benchmark the experiment runner: cache states, pool sizes, backends, costing.

Times full-grid ``collect_profiles`` wall time under five configurations --
cold serial, warm cache, cold parallel, cache-disabled serial, and the
per-element ``reference`` profiling backend (the pre-vectorization
behaviour) -- plus the platform-costing layer (the per-call
``estimate_cycles`` loop against ``estimate_cycles_batch`` over a
128-variant design-space grid) and the SpMU simulator layer (the reference
per-cycle loop against the lock-step array engine over a cold 128-variant
microbenchmark grid), and writes ``BENCH_runner.json`` at the repository
root to track the performance trajectory.

It also times the format substrate (the packed-word scan/convert/construct
grid: ``scan_batch`` against the element-at-a-time scan loop, the batched
``convert_many`` against its tile loop, and the vectorized bit-tree build
against the ``set()`` loop), recorded under ``formats``, and the adaptive
design-space search (the seeded evolutionary engine against exhaustive
three-objective enumeration of a 2048-variant grid, plus a kilovariant-
space exploration pass), recorded under ``dse``.

Every run is appended to the SQLite experiment store
(:class:`repro.runtime.runstore.RunStore`; ``--run-db`` / ``REPRO_RUN_DB``,
``--no-run-db`` to skip) and then evaluated through the declarative gate in
:mod:`repro.eval.regression`: identity flags and absolute speedup floors
come from ``benchmarks/expectations.toml`` (``--expectations`` to
substitute), and per-section time ratios are checked against a baseline --
either a committed JSON record (``--baseline BENCH_runner.json``) or a
named snapshot frozen in the store (``--compare-baseline NAME``;
``--snapshot-baseline NAME`` freezes the current run). The legacy
``--max-slowdown`` / ``--min-*-speedup`` / ``--max-peak-ratio`` flags
remain as one-shot overrides of the corresponding expectation entries. A
baseline recorded at a different scale is a categorized ``scale-mismatch``
outcome (ratios skipped, absolute gates still enforced), not a hard error.
Exit code 1 means the comparison report failed.

``--replay RECORD.json`` skips benchmark execution and pushes an existing
record through the same store/compare/verdict pipeline -- useful for
re-evaluating an artifact under new expectations and for testing the gate
itself.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py [--scale 1/16] [--workers 4]
    PYTHONPATH=src python benchmarks/bench_runner.py --no-reference \\
        --baseline BENCH_runner.json --output bench-ci.json
    PYTHONPATH=src python benchmarks/bench_runner.py --replay BENCH_runner.json \\
        --compare-baseline main --summary report.md
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro._compiled import HAS_NUMBA
from repro.apps.timing import (
    COSTING_BYTES_PER_CELL,
    estimate_cycles,
    estimate_cycles_batch,
    iter_cycles_batches,
)
from repro.config import MemoryTechnology, ShuffleMode, SpMUConfig
from repro.core.ordering import OrderingMode
from repro.core.spmu import effective_bank_throughput_batch
from repro.core.spmu_array import SpMUVariant
from repro.errors import CapstanError
from repro.eval.experiments import collect_profiles
from repro.eval.regression import (
    compare_to_baseline,
    default_expectations,
    detect_trends,
    format_comparison_markdown,
    format_comparison_report,
    format_trends,
    load_expectations,
    set_expectation,
)
from repro.runtime.cache import ProfileCache
from repro.runtime.cli import _parse_scale
from repro.runtime.runstore import RunStore
from repro.runtime.sweep import sweep


def _timed(**kwargs) -> float:
    start = time.perf_counter()
    collect_profiles(**kwargs)
    return time.perf_counter() - start


def _traced_peak_mb(fn) -> float:
    """Peak traced allocation (MiB) of one callable, in a clean trace.

    Timing passes stay untraced (tracemalloc adds per-allocation overhead);
    each section runs one extra pass under the tracer purely to record its
    peak working set.
    """
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024 * 1024)


def _bench_costing(profiles, batch_repeats: int = 3) -> dict:
    """Time the scalar estimate_cycles loop against the batched path.

    The grid sweeps structural and policy axes into 128 variants; the
    calibrated sub-models (SpMU throughput, merge efficiency) are warmed --
    and their equality verified cell by cell -- before timing, so both
    paths measure costing machinery rather than one-time microbenchmarks.
    """
    variants = sweep(
        lanes=(8, 16),
        banks=(16, 32),
        queue_depth=(8, 16),
        bank_mapping=("hash", "linear"),
        ordering=(OrderingMode.UNORDERED, OrderingMode.ADDRESS_ORDERED),
        memory=(MemoryTechnology.HBM2E, MemoryTechnology.DDR4),
        shuffle=(ShuffleMode.MRG1, ShuffleMode.NONE),
    )
    platforms = list(variants.values())

    warm = estimate_cycles_batch(profiles, platforms)

    start = time.perf_counter()
    identical = True
    for i, profile in enumerate(profiles):
        for j, platform in enumerate(platforms):
            cycles, _ = estimate_cycles(profile, platform)
            if cycles != warm.cycles[i, j]:
                identical = False
    scalar_s = time.perf_counter() - start

    batch_s = min(
        _timed_batch(profiles, platforms) for _ in range(max(1, batch_repeats))
    )
    peak_mb = _traced_peak_mb(lambda: estimate_cycles_batch(profiles, platforms))
    return {
        "variants": len(platforms),
        "profiles": len(profiles),
        "cells": len(platforms) * len(profiles),
        "scalar_s": round(scalar_s, 4),
        "batch_s": round(batch_s, 4),
        "batch_speedup": round(scalar_s / batch_s, 1),
        "peak_mb": round(peak_mb, 2),
        "identical": identical,
    }


def _timed_batch(profiles, platforms) -> float:
    start = time.perf_counter()
    estimate_cycles_batch(profiles, platforms)
    return time.perf_counter() - start


def _bench_formats() -> dict:
    """Time the format-substrate batch paths against the retained references.

    Three axes, mirroring the substrate's consumers:

    * ``scan`` -- :meth:`BitVectorScanner.scan_batch` against the
      element-at-a-time ``scan_reference`` loop, across densities and all
      three scan modes;
    * ``convert`` -- the batched :meth:`FormatConverter.convert_many`
      against the tile-at-a-time reference loop;
    * ``construct`` -- the vectorized :meth:`BitTree.from_indices` build
      against the object-at-a-time ``set()`` loop.

    Every batch result is checked element-for-element against its
    reference before timing is reported; ``identical`` covers all axes.
    """
    from repro.core.format_conversion import FormatConverter
    from repro.core.scanner import BitVectorScanner, ScanMode
    from repro.formats.bittree import BitTree
    from repro.formats.reference import bittree_from_indices_reference
    from repro.workloads.synthetic import sparse_bitvector

    identical = True

    # --- scan axis: density x mode grid of 4096-bit operand pairs -------- #
    scanner = BitVectorScanner()
    scan_cases = []
    for density in (0.01, 0.05, 0.2):
        for seed in range(4):
            a = sparse_bitvector(4096, density, seed=seed)
            b = sparse_bitvector(4096, density, seed=seed + 100)
            for mode in (ScanMode.INTERSECT, ScanMode.UNION, ScanMode.SINGLE):
                scan_cases.append((a, None if mode is ScanMode.SINGLE else b, mode))
    for a, b, mode in scan_cases:
        if scanner.scan_batch(a, b, mode).elements() != scanner.scan_reference(a, b, mode):
            identical = False

    def _scan_batch():
        for a, b, mode in scan_cases:
            scanner.scan_batch(a, b, mode)

    def _scan_reference():
        for a, b, mode in scan_cases:
            scanner.scan_reference(a, b, mode)

    # --- convert axis: 128 pointer tiles into 4096-bit bit-vectors ------- #
    converter = FormatConverter(lanes=16, word_bits=32)
    rng = np.random.default_rng(3)
    tiles = [
        np.sort(rng.choice(4096, size=48, replace=False))
        for _ in range(128)
    ]
    fast_vectors, fast_stats = converter.convert_many(4096, tiles)
    ref_vectors, ref_stats = converter.convert_many_reference(4096, tiles)
    if fast_stats != ref_stats or any(
        f != r for f, r in zip(fast_vectors, ref_vectors)
    ):
        identical = False

    def _convert_batch():
        converter.convert_many(4096, tiles)

    def _convert_reference():
        converter.convert_many_reference(4096, tiles)

    # --- construct axis: 65536-bit bit-trees across densities ------------ #
    construct_cases = []
    for density in (0.002, 0.01, 0.05):
        vector = sparse_bitvector(65536, density, seed=9)
        construct_cases.append((vector.indices, vector.values))
    for indices, values in construct_cases:
        fast = BitTree.from_indices(65536, indices, values)
        reference = bittree_from_indices_reference(65536, indices, values)
        if not (
            np.array_equal(fast.indices(), reference.indices())
            and np.array_equal(fast.words, reference.words)
            and np.array_equal(fast.values(), reference.values())
        ):
            identical = False

    def _construct_batch():
        for indices, values in construct_cases:
            BitTree.from_indices(65536, indices, values)

    def _construct_reference():
        for indices, values in construct_cases:
            bittree_from_indices_reference(65536, indices, values)

    def _best_of(fn, repeats=2):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    axes = {
        "scan": (_scan_batch, _scan_reference),
        "convert": (_convert_batch, _convert_reference),
        "construct": (_construct_batch, _construct_reference),
    }
    record: dict = {"identical": identical}
    batch_total = 0.0
    reference_total = 0.0
    for name, (batch_fn, reference_fn) in axes.items():
        batch_s = _best_of(batch_fn)
        reference_s = _best_of(reference_fn)
        batch_total += batch_s
        reference_total += reference_s
        record[name] = {
            "batch_s": round(batch_s, 4),
            "reference_s": round(reference_s, 4),
            "speedup": round(reference_s / batch_s, 1),
        }
    record["batch_s"] = round(batch_total, 4)
    record["reference_s"] = round(reference_total, 4)
    record["speedup"] = round(reference_total / batch_total, 1)

    def _all_batches():
        _scan_batch()
        _convert_batch()
        _construct_batch()

    record["peak_mb"] = round(_traced_peak_mb(_all_batches), 2)
    return record


def _bench_spmu() -> dict:
    """Time the cold 128-variant SpMU microbenchmark grid on both backends.

    The grid crosses the paper's Table 4 structural axes (queue depth,
    crossbar size, allocator priorities) with the Table 9/10 policy axes
    (ordering, bank mapping, allocator kind). The reference side runs the
    original per-cycle object loop variant by variant; the array side runs
    one lock-step :func:`effective_bank_throughput_batch` pass. Both are
    cold: the persistent throughput store is disabled and the in-process
    memo cleared, so the numbers measure simulation, not caching -- and the
    resulting throughputs must be bit-identical.
    """
    import repro.core.spmu as spmu_module

    variants = [
        SpMUVariant(
            ordering=ordering,
            bank_mapping=mapping,
            allocator_kind=allocator,
            config=SpMUConfig(
                queue_depth=depth,
                crossbar_inputs=crossbar,
                allocator_priorities=priorities,
            ),
        )
        for ordering, mapping, allocator, depth, crossbar, priorities in itertools.product(
            list(OrderingMode),
            ("hash", "linear"),
            ("separable", "greedy"),
            (8, 16),
            (16, 32),
            (1, 3),
        )
    ]
    saved_disable = os.environ.get("REPRO_THROUGHPUT_CACHE_DISABLE")
    os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"] = "1"
    try:
        array_s = reference_s = float("inf")
        array_values = reference_values = None
        for _ in range(2):  # best-of-2, like the costing benchmark
            spmu_module._THROUGHPUT_CACHE.clear()
            start = time.perf_counter()
            array_values = effective_bank_throughput_batch(variants)
            array_s = min(array_s, time.perf_counter() - start)
            start = time.perf_counter()
            reference_values = effective_bank_throughput_batch(
                variants, backend="reference"
            )
            reference_s = min(reference_s, time.perf_counter() - start)
        spmu_module._THROUGHPUT_CACHE.clear()
        peak_mb = _traced_peak_mb(
            lambda: effective_bank_throughput_batch(variants)
        )
    finally:
        spmu_module._THROUGHPUT_CACHE.clear()
        if saved_disable is None:
            del os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"]
        else:
            os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"] = saved_disable
    return {
        "variants": len(variants),
        "vectors": spmu_module._THROUGHPUT_VECTORS,
        "reference_s": round(reference_s, 3),
        "array_s": round(array_s, 3),
        "speedup": round(reference_s / array_s, 1),
        "peak_mb": round(peak_mb, 2),
        "identical": bool(
            all(a == r for a, r in zip(array_values, reference_values))
        ),
    }


def _bench_chunked(profiles) -> dict:
    """Prove a 4096-variant costing grid streams flat-memory under budget.

    The grid crosses ten structural/policy axes into 4096 platform variants
    (64 distinct SpMU calibration microbenchmarks, prefetched once so every
    pass measures costing, not simulation). Three comparisons:

    * ``identical`` -- the chunked :func:`estimate_cycles_batch` (explicit
      byte budget sized for 128-variant chunks) reproduces the unchunked
      grid bit for bit, cycles and every stall category, and the streaming
      :func:`iter_cycles_batches` fold reproduces the per-variant
      geometric means float for float;
    * ``peak_ratio`` -- the traced peak of streaming all 4096 variants
      under the budget against the traced peak of a plain 128-variant run;
      flat-memory streaming keeps the ratio near 1 (the CI gate allows
      ``--max-peak-ratio``);
    * ``spmu_numba_speedup`` -- with numba installed, the compiled
      per-cycle SpMU kernel against the lock-step engine over a cold
      32-variant microbenchmark grid (``None`` when numba is absent).
    """
    import repro.core.spmu as spmu_module
    from repro.runtime.dse import prefill_throughputs
    from repro.sim.stats import geometric_mean

    variants = sweep(
        lanes=(8, 16),
        banks=(16, 32),
        queue_depth=(8, 16),
        crossbar_inputs=(16, 32),
        compute_units=(49, 100, 196, 400),
        bank_mapping=("hash", "linear"),
        allocator=("separable", "greedy"),
        ordering=tuple(OrderingMode),
        memory=(MemoryTechnology.HBM2E, MemoryTechnology.DDR4),
        shuffle=(ShuffleMode.MRG1, ShuffleMode.NONE),
    )
    platforms = list(variants.values())
    small = platforms[:128]
    budget = 128 * len(profiles) * COSTING_BYTES_PER_CELL

    saved_disable = os.environ.get("REPRO_THROUGHPUT_CACHE_DISABLE")
    os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"] = "1"
    try:
        prefill_throughputs(platforms)

        start = time.perf_counter()
        full = estimate_cycles_batch(profiles, platforms)
        unchunked_s = time.perf_counter() - start

        start = time.perf_counter()
        chunked = estimate_cycles_batch(profiles, platforms, memory_budget=budget)
        chunked_s = time.perf_counter() - start

        identical = np.array_equal(full.cycles, chunked.cycles) and all(
            np.array_equal(full.categories[name], chunked.categories[name])
            for name in full.categories
        )

        gmean_full = [
            geometric_mean([float(c) for c in full.cycles[:, j]])
            for j in range(len(platforms))
        ]

        def _streamed_gmeans():
            gmeans = []
            for _, part in iter_cycles_batches(
                profiles, platforms, memory_budget=budget
            ):
                gmeans.extend(
                    geometric_mean([float(c) for c in part.cycles[:, j]])
                    for j in range(part.cycles.shape[1])
                )
                # Release this chunk before the generator builds the next
                # one, keeping the live set at one chunk.
                del part
            return gmeans

        identical = identical and _streamed_gmeans() == gmean_full

        peak_small_mb = _traced_peak_mb(
            lambda: estimate_cycles_batch(profiles, small)
        )
        peak_streamed_mb = _traced_peak_mb(_streamed_gmeans)

        spmu_numba_speedup = None
        if HAS_NUMBA:
            micro = [
                SpMUVariant(
                    ordering=ordering,
                    bank_mapping=mapping,
                    allocator_kind=allocator,
                    config=SpMUConfig(queue_depth=depth),
                )
                for ordering, mapping, allocator, depth in itertools.product(
                    list(OrderingMode),
                    ("hash", "linear"),
                    ("separable", "greedy"),
                    (8, 16),
                )
            ]
            # Warm the JIT before timing the compiled path.
            spmu_module._THROUGHPUT_CACHE.clear()
            effective_bank_throughput_batch(micro, backend="numba")
            numpy_s = numba_s = float("inf")
            for _ in range(2):
                spmu_module._THROUGHPUT_CACHE.clear()
                start = time.perf_counter()
                effective_bank_throughput_batch(micro)
                numpy_s = min(numpy_s, time.perf_counter() - start)
                spmu_module._THROUGHPUT_CACHE.clear()
                start = time.perf_counter()
                effective_bank_throughput_batch(micro, backend="numba")
                numba_s = min(numba_s, time.perf_counter() - start)
            spmu_numba_speedup = round(numpy_s / numba_s, 1)
    finally:
        spmu_module._THROUGHPUT_CACHE.clear()
        if saved_disable is None:
            del os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"]
        else:
            os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"] = saved_disable

    return {
        "variants": len(platforms),
        "profiles": len(profiles),
        "memory_budget_bytes": budget,
        "chunk_platforms": budget // (len(profiles) * COSTING_BYTES_PER_CELL),
        "unchunked_s": round(unchunked_s, 3),
        "chunked_s": round(chunked_s, 3),
        "chunked_slowdown": round(chunked_s / unchunked_s, 2),
        "peak_small_mb": round(peak_small_mb, 2),
        "peak_streamed_mb": round(peak_streamed_mb, 2),
        "peak_ratio": round(peak_streamed_mb / peak_small_mb, 2),
        "numba_available": HAS_NUMBA,
        "spmu_numba_speedup": spmu_numba_speedup,
        "identical": bool(identical),
    }


def _bench_dse(profiles, workers, executor) -> dict:
    """Pit the adaptive search engine against exhaustive enumeration.

    Two spaces, both cold (persistent throughput store disabled, in-process
    memo cleared before every timed pass):

    * a 2048-variant grid small enough to enumerate: the exhaustive
      three-objective :func:`explore` pass (cycles, area, energy) gives the
      true Pareto frontier and its hypervolume; a seeded evolutionary
      search over the same space must recover ``hypervolume_ratio`` of it
      while spending ``eval_fraction`` of the full-grid evaluation budget
      (the CI gate requires >= 0.95 at <= 0.25);
    * the kilovariant default space (:data:`DEFAULT_SEARCH_AXES`,
      110,592 points) where enumeration is off the table -- only the
      search runs, and ``kilovariant_s`` tracks that exploring it stays
      minutes, not hours.

    ``identical`` folds in the two bit-level contracts the search rests
    on: the vectorized energy batch reproduces the per-call
    :func:`estimate_energy` reference element for element, and re-running
    the seeded search yields a byte-identical result payload.
    """
    import repro.core.spmu as spmu_module
    from repro.core.energy import ENERGY_CATEGORIES, estimate_energy
    from repro.runtime.dse import explore
    from repro.runtime.search import (
        DEFAULT_SEARCH_AXES,
        AdaptiveSearch,
        SearchSpace,
        hypervolume,
        make_strategy,
    )

    axes = {
        "lanes": (8, 16),
        "banks": (16, 32),
        "queue_depth": (8, 16),
        "crossbar_inputs": (16, 32),
        "compute_units": (64, 100, 144, 196, 256, 324, 400, 484),
        "bank_mapping": ("hash", "linear"),
        "allocator": ("separable", "greedy"),
        "ordering": (OrderingMode.UNORDERED, OrderingMode.ADDRESS_ORDERED),
        "memory": (MemoryTechnology.HBM2E, MemoryTechnology.DDR4),
    }
    objectives = ("cycles", "area", "energy")

    def _search(space, population, generations, seed=0):
        engine = AdaptiveSearch(
            space,
            make_strategy("evolve", population=population, generations=generations),
            profiles,
            objectives=objectives,
            seed=seed,
        )
        return engine.run()

    saved_disable = os.environ.get("REPRO_THROUGHPUT_CACHE_DISABLE")
    os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"] = "1"
    try:
        spmu_module._THROUGHPUT_CACHE.clear()
        start = time.perf_counter()
        exhaustive = explore(profiles=profiles, energy=True, **axes)
        exhaustive_s = time.perf_counter() - start

        exhaustive_costs = np.column_stack(
            (
                exhaustive.gmean_cycles,
                np.array([row["area_mm2"] for row in exhaustive.rows()]),
                exhaustive.gmean_energy_mj,
            )
        )
        # A reference point strictly dominated by every candidate, so each
        # one contributes volume; both frontiers are scored against it.
        reference = exhaustive_costs.max(axis=0) * 1.1
        exhaustive_hv = hypervolume(exhaustive_costs, reference)

        space = SearchSpace.from_axes(axes)
        spmu_module._THROUGHPUT_CACHE.clear()
        start = time.perf_counter()
        result = _search(space, population=48, generations=8)
        search_s = time.perf_counter() - start
        hv_ratio = result.hypervolume(reference) / exhaustive_hv

        # Same seed, fresh engine: the result payload must be byte-identical.
        deterministic = json.dumps(_search(space, 48, 8).to_dict()) == json.dumps(
            result.to_dict()
        )

        # The energy batch the search consumes must match the per-call
        # reference exactly (spot check over a corner of the grid).
        spot_platforms = list(exhaustive.variants.values())[:16]
        spot_profiles = profiles[:4]
        batch = estimate_cycles_batch(spot_profiles, spot_platforms, energy=True)
        energy_identical = all(
            batch.energy_mj[i, j] == estimate_energy(profile, platform)[0]
            and all(
                batch.energy_categories[name][i, j]
                == getattr(estimate_energy(profile, platform)[1], name)
                for name in ENERGY_CATEGORIES
            )
            for i, profile in enumerate(spot_profiles)
            for j, platform in enumerate(spot_platforms)
        )

        # Warm memo: the traced pass measures search machinery, not the
        # SpMU simulations already counted in the timing above.
        peak_mb = _traced_peak_mb(lambda: _search(space, 48, 8))

        kilovariant = SearchSpace.from_axes(dict(DEFAULT_SEARCH_AXES))
        spmu_module._THROUGHPUT_CACHE.clear()
        start = time.perf_counter()
        kv_result = _search(kilovariant, population=64, generations=8)
        kilovariant_s = time.perf_counter() - start
    finally:
        spmu_module._THROUGHPUT_CACHE.clear()
        if saved_disable is None:
            del os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"]
        else:
            os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"] = saved_disable

    return {
        "space_size": space.size,
        "profiles": len(profiles),
        "objectives": list(objectives),
        "exhaustive_s": round(exhaustive_s, 3),
        "search_s": round(search_s, 3),
        "search_speedup": round(exhaustive_s / search_s, 1),
        "evaluations": round(result.evaluations, 1),
        "eval_fraction": round(result.evaluations / space.size, 4),
        "hypervolume_ratio": round(hv_ratio, 4),
        "frontier_exhaustive": len(exhaustive.frontier(objectives)),
        "frontier_search": len(result.frontier()),
        "kilovariant_space": kilovariant.size,
        "kilovariant_s": round(kilovariant_s, 1),
        "kilovariant_evaluations": round(kv_result.evaluations, 1),
        "kilovariant_frontier": len(kv_result.frontier()),
        "workers": workers,
        "executor": executor,
        "cpu_count": os.cpu_count(),
        "peak_mb": round(peak_mb, 2),
        "identical": bool(energy_identical and deterministic),
    }


def _resolve_expectations(args) -> dict:
    """Load the declarative gate and apply any legacy flag overrides.

    Sections skipped by ``--no-*`` flags are pruned so a deliberately
    partial run does not read as a ``missing-section`` failure.
    """
    if args.expectations:
        expectations = load_expectations(args.expectations)
    else:
        bundled = Path(__file__).resolve().parent / "expectations.toml"
        expectations = (
            load_expectations(bundled) if bundled.exists() else default_expectations()
        )
    if args.max_slowdown is not None:
        for spec in expectations["sections"].values():
            for metric in spec.get("compare", {}):
                spec["compare"][metric] = args.max_slowdown
    overrides = (
        (args.min_batch_speedup, "costing", "min", "batch_speedup"),
        (args.min_spmu_speedup, "spmu", "min", "speedup"),
        (args.min_formats_speedup, "formats", "min", "speedup"),
        (args.min_numba_speedup, "chunked", "min", "spmu_numba_speedup"),
        (args.max_peak_ratio, "chunked", "max", "peak_ratio"),
        (args.min_hypervolume_ratio, "dse", "min", "hypervolume_ratio"),
        (args.max_eval_fraction, "dse", "max", "eval_fraction"),
    )
    for value, section, kind, metric in overrides:
        if value is not None:
            set_expectation(expectations, section, kind, value, metric)
    for skipped, section in (
        (args.no_costing, "costing"),
        (args.no_spmu, "spmu"),
        (args.no_formats, "formats"),
        (args.no_chunked, "chunked"),
        (args.no_dse, "dse"),
    ):
        if skipped:
            expectations["sections"].pop(section, None)
    return expectations


def _run_benchmarks(args, scale: float) -> dict:
    """Execute every enabled benchmark section and build the record."""
    # An ambient budget would silently chunk every section; the chunked
    # section sets its own explicit budget where one is wanted.
    os.environ.pop("REPRO_MEMORY_BUDGET", None)

    # Warm the in-process dataset-generation cache so every configuration
    # below measures profiling cost, not synthetic-matrix generation. The
    # returned profiles double as the costing benchmark's workload rows.
    profile_set = collect_profiles(scale=scale, workers=1, cache=False)

    with tempfile.TemporaryDirectory() as tmp_serial, tempfile.TemporaryDirectory() as tmp_par:
        uncached_s = _timed(scale=scale, workers=1, cache=False)
        cold_serial_s = _timed(scale=scale, workers=1, cache=ProfileCache(root=tmp_serial))
        warm_serial_s = _timed(scale=scale, workers=1, cache=ProfileCache(root=tmp_serial))
        cold_parallel_s = _timed(
            scale=scale,
            workers=args.workers,
            cache=ProfileCache(root=tmp_par),
            executor=args.executor,
        )
        reference_serial_s = (
            None
            if args.no_reference
            else _timed(scale=scale, workers=1, cache=False, backend="reference")
        )

    record = {
        "benchmark": "collect_profiles full grid (11 apps x 3 datasets)",
        "scale": scale,
        "workers": args.workers,
        "executor": args.executor
        or ("pool" if args.workers and args.workers > 1 else "local"),
        "cpu_count": os.cpu_count(),
        "uncached_serial_s": round(uncached_s, 3),
        "cold_serial_s": round(cold_serial_s, 3),
        "warm_serial_s": round(warm_serial_s, 3),
        "cold_parallel_s": round(cold_parallel_s, 3),
        "reference_serial_s": (
            None if reference_serial_s is None else round(reference_serial_s, 3)
        ),
        "parallel_speedup": round(cold_serial_s / cold_parallel_s, 2),
        "warm_cache_speedup": round(cold_serial_s / warm_serial_s, 2),
        "vectorized_speedup": (
            None
            if reference_serial_s is None
            else round(reference_serial_s / uncached_s, 2)
        ),
    }
    profiles = [profile_set.profiles[key] for key in sorted(profile_set.profiles)]
    if not args.no_costing:
        record["costing"] = _bench_costing(profiles)
    if not args.no_spmu:
        record["spmu"] = _bench_spmu()
    if not args.no_formats:
        record["formats"] = _bench_formats()
    if not args.no_chunked:
        record["chunked"] = _bench_chunked(profiles)
    if not args.no_dse:
        record["dse"] = _bench_dse(profiles, record["workers"], record["executor"])
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="1/16", help="dataset scale (default 1/16)")
    parser.add_argument("--workers", type=int, default=4, help="parallel pool size")
    parser.add_argument(
        "--executor",
        default=None,
        choices=("local", "pool", "subprocess"),
        help="executor for the parallel pass (default: automatic)",
    )
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the (slow) reference-backend pass",
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="RECORD",
        help=(
            "skip benchmark execution and push this existing record through "
            "the store/compare/verdict pipeline instead"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed benchmark record (JSON) to ratio-check this run against",
    )
    parser.add_argument(
        "--expectations",
        default=None,
        help=(
            "expectations TOML with the per-section gate "
            "(default: benchmarks/expectations.toml)"
        ),
    )
    parser.add_argument(
        "--run-db",
        default=None,
        help="run-store database path (default: $REPRO_RUN_DB or ~/.cache/repro/runs.sqlite)",
    )
    parser.add_argument(
        "--no-run-db",
        action="store_true",
        help="do not record this run in the experiment store",
    )
    parser.add_argument(
        "--label",
        default=None,
        help="free-form label stored with the run (e.g. a branch or CI run id)",
    )
    parser.add_argument(
        "--snapshot-baseline",
        default=None,
        metavar="NAME",
        help="freeze this run as the named baseline in the store",
    )
    parser.add_argument(
        "--compare-baseline",
        default=None,
        metavar="NAME",
        help=(
            "ratio-check against this named store baseline (ignored when "
            "--baseline is also given; absolute checks only when the name "
            "does not exist yet)"
        ),
    )
    parser.add_argument(
        "--summary",
        default=None,
        metavar="PATH",
        help="append the comparison report as markdown here (e.g. $GITHUB_STEP_SUMMARY)",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=None,
        help="override every per-section baseline ratio limit (expectations default: 2.0)",
    )
    parser.add_argument(
        "--no-costing",
        action="store_true",
        help="skip the batched-costing benchmark",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=None,
        help="override the batched-costing speedup floor (expectations default: 5.0)",
    )
    parser.add_argument(
        "--no-spmu",
        action="store_true",
        help="skip the SpMU microbenchmark-grid benchmark",
    )
    parser.add_argument(
        "--no-formats",
        action="store_true",
        help="skip the format-substrate (scan/convert/construct) benchmark",
    )
    parser.add_argument(
        "--min-formats-speedup",
        type=float,
        default=None,
        help="override the format-substrate speedup floor (expectations default: 3.0)",
    )
    parser.add_argument(
        "--min-spmu-speedup",
        type=float,
        default=None,
        help="override the array-SpMU speedup floor (expectations default: 6.0)",
    )
    parser.add_argument(
        "--no-chunked",
        action="store_true",
        help="skip the memory-bounded chunked-execution benchmark",
    )
    parser.add_argument(
        "--max-peak-ratio",
        type=float,
        default=None,
        help="override the streamed-peak ratio limit (expectations default: 1.5)",
    )
    parser.add_argument(
        "--no-dse",
        action="store_true",
        help="skip the adaptive-search vs exhaustive-enumeration benchmark",
    )
    parser.add_argument(
        "--min-hypervolume-ratio",
        type=float,
        default=None,
        help=(
            "override the search-vs-exhaustive hypervolume floor "
            "(expectations default: 0.95)"
        ),
    )
    parser.add_argument(
        "--max-eval-fraction",
        type=float,
        default=None,
        help=(
            "override the search evaluation-budget ceiling "
            "(expectations default: 0.25)"
        ),
    )
    parser.add_argument(
        "--min-numba-speedup",
        type=float,
        default=None,
        help=(
            "override the compiled-SpMU speedup floor (expectations default: "
            "3.0; only checked when numba is installed)"
        ),
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_runner.json"),
        help="where to write the benchmark record",
    )
    args = parser.parse_args(argv)
    try:
        expectations = _resolve_expectations(args)
    except (CapstanError, OSError) as exc:
        parser.error(str(exc))
    if args.compare_baseline and args.no_run_db:
        parser.error("--compare-baseline needs the run store (drop --no-run-db)")

    # Read the baseline up front: --output may overwrite the same file.
    baseline = json.loads(Path(args.baseline).read_text()) if args.baseline else None

    if args.replay:
        record = json.loads(Path(args.replay).read_text())
    else:
        record = _run_benchmarks(args, _parse_scale(args.scale))
        Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
        print(json.dumps(record, indent=2))

    store = None
    trends = []
    if not args.no_run_db:
        store = RunStore(Path(args.run_db)) if args.run_db else RunStore()
        run_id = store.record_run(record, label=args.label)
        print(f"recorded run {run_id} in {store.path}")
        if args.snapshot_baseline:
            store.snapshot_baseline(args.snapshot_baseline, run_id=run_id)
            print(f"froze baseline {args.snapshot_baseline!r} from run {run_id}")
        if args.compare_baseline and baseline is None:
            stored = store.baseline(args.compare_baseline)
            if stored is None:
                # First run against a fresh store: nothing to ratio-check
                # yet, so fall through to the absolute-only report.
                print(
                    f"no baseline {args.compare_baseline!r} in {store.path}; "
                    "running absolute checks only",
                    file=sys.stderr,
                )
            else:
                baseline = stored

    report = compare_to_baseline(record, baseline, expectations)
    print(format_comparison_report(report))
    if store is not None:
        trends = detect_trends(store, expectations)
        if trends:
            print(format_trends(trends))
    if args.summary:
        # Comparison report only: run history and drift tables are the
        # bench-history subcommand's job (CI composes both into one page).
        with open(args.summary, "a") as handle:
            handle.write(format_comparison_markdown(report) + "\n")
    if store is not None:
        store.close()
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
