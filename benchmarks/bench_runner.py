"""Benchmark the experiment runner: cache states, pool sizes, backends, costing.

Times full-grid ``collect_profiles`` wall time under five configurations --
cold serial, warm cache, cold parallel, cache-disabled serial, and the
per-element ``reference`` profiling backend (the pre-vectorization
behaviour) -- plus the platform-costing layer (the per-call
``estimate_cycles`` loop against ``estimate_cycles_batch`` over a
128-variant design-space grid) and the SpMU simulator layer (the reference
per-cycle loop against the lock-step array engine over a cold 128-variant
microbenchmark grid), and writes ``BENCH_runner.json`` at the repository
root to track the performance trajectory.

With ``--baseline`` the run additionally compares its cold vectorized time,
batched costing time, and array SpMU grid time against a committed record
and fails (exit code 1) when any regressed by more than ``--max-slowdown``
(the CI ``bench-smoke`` job's contract). The costing and SpMU records are
also gated unconditionally: each batched path must be bit-identical to its
reference and at least ``--min-batch-speedup`` / ``--min-spmu-speedup``
times faster.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py [--scale 1/16] [--workers 4]
    PYTHONPATH=src python benchmarks/bench_runner.py --no-reference \\
        --baseline BENCH_runner.json --output bench-ci.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.apps.timing import estimate_cycles, estimate_cycles_batch
from repro.config import MemoryTechnology, ShuffleMode, SpMUConfig
from repro.core.ordering import OrderingMode
from repro.core.spmu import effective_bank_throughput_batch
from repro.core.spmu_array import SpMUVariant
from repro.eval.experiments import collect_profiles
from repro.runtime.cache import ProfileCache
from repro.runtime.cli import _parse_scale
from repro.runtime.sweep import sweep


def _timed(**kwargs) -> float:
    start = time.perf_counter()
    collect_profiles(**kwargs)
    return time.perf_counter() - start


def _bench_costing(profiles, batch_repeats: int = 3) -> dict:
    """Time the scalar estimate_cycles loop against the batched path.

    The grid sweeps structural and policy axes into 128 variants; the
    calibrated sub-models (SpMU throughput, merge efficiency) are warmed --
    and their equality verified cell by cell -- before timing, so both
    paths measure costing machinery rather than one-time microbenchmarks.
    """
    variants = sweep(
        lanes=(8, 16),
        banks=(16, 32),
        queue_depth=(8, 16),
        bank_mapping=("hash", "linear"),
        ordering=(OrderingMode.UNORDERED, OrderingMode.ADDRESS_ORDERED),
        memory=(MemoryTechnology.HBM2E, MemoryTechnology.DDR4),
        shuffle=(ShuffleMode.MRG1, ShuffleMode.NONE),
    )
    platforms = list(variants.values())

    warm = estimate_cycles_batch(profiles, platforms)

    start = time.perf_counter()
    identical = True
    for i, profile in enumerate(profiles):
        for j, platform in enumerate(platforms):
            cycles, _ = estimate_cycles(profile, platform)
            if cycles != warm.cycles[i, j]:
                identical = False
    scalar_s = time.perf_counter() - start

    batch_s = min(
        _timed_batch(profiles, platforms) for _ in range(max(1, batch_repeats))
    )
    return {
        "variants": len(platforms),
        "profiles": len(profiles),
        "cells": len(platforms) * len(profiles),
        "scalar_s": round(scalar_s, 4),
        "batch_s": round(batch_s, 4),
        "batch_speedup": round(scalar_s / batch_s, 1),
        "identical": identical,
    }


def _timed_batch(profiles, platforms) -> float:
    start = time.perf_counter()
    estimate_cycles_batch(profiles, platforms)
    return time.perf_counter() - start


def _bench_spmu() -> dict:
    """Time the cold 128-variant SpMU microbenchmark grid on both backends.

    The grid crosses the paper's Table 4 structural axes (queue depth,
    crossbar size, allocator priorities) with the Table 9/10 policy axes
    (ordering, bank mapping, allocator kind). The reference side runs the
    original per-cycle object loop variant by variant; the array side runs
    one lock-step :func:`effective_bank_throughput_batch` pass. Both are
    cold: the persistent throughput store is disabled and the in-process
    memo cleared, so the numbers measure simulation, not caching -- and the
    resulting throughputs must be bit-identical.
    """
    import repro.core.spmu as spmu_module

    variants = [
        SpMUVariant(
            ordering=ordering,
            bank_mapping=mapping,
            allocator_kind=allocator,
            config=SpMUConfig(
                queue_depth=depth,
                crossbar_inputs=crossbar,
                allocator_priorities=priorities,
            ),
        )
        for ordering, mapping, allocator, depth, crossbar, priorities in itertools.product(
            list(OrderingMode),
            ("hash", "linear"),
            ("separable", "greedy"),
            (8, 16),
            (16, 32),
            (1, 3),
        )
    ]
    saved_disable = os.environ.get("REPRO_THROUGHPUT_CACHE_DISABLE")
    os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"] = "1"
    try:
        array_s = reference_s = float("inf")
        array_values = reference_values = None
        for _ in range(2):  # best-of-2, like the costing benchmark
            spmu_module._THROUGHPUT_CACHE.clear()
            start = time.perf_counter()
            array_values = effective_bank_throughput_batch(variants)
            array_s = min(array_s, time.perf_counter() - start)
            start = time.perf_counter()
            reference_values = effective_bank_throughput_batch(
                variants, backend="reference"
            )
            reference_s = min(reference_s, time.perf_counter() - start)
    finally:
        spmu_module._THROUGHPUT_CACHE.clear()
        if saved_disable is None:
            del os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"]
        else:
            os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"] = saved_disable
    return {
        "variants": len(variants),
        "vectors": spmu_module._THROUGHPUT_VECTORS,
        "reference_s": round(reference_s, 3),
        "array_s": round(array_s, 3),
        "speedup": round(reference_s / array_s, 1),
        "identical": bool(
            all(a == r for a, r in zip(array_values, reference_values))
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="1/16", help="dataset scale (default 1/16)")
    parser.add_argument("--workers", type=int, default=4, help="parallel pool size")
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the (slow) reference-backend pass",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed benchmark record to regression-check the cold vectorized time against",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="fail when cold_serial_s exceeds baseline by this factor (default 2.0)",
    )
    parser.add_argument(
        "--no-costing",
        action="store_true",
        help="skip the batched-costing benchmark",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=5.0,
        help="fail when batched costing is not this much faster than the scalar loop",
    )
    parser.add_argument(
        "--no-spmu",
        action="store_true",
        help="skip the SpMU microbenchmark-grid benchmark",
    )
    parser.add_argument(
        "--min-spmu-speedup",
        type=float,
        default=6.0,
        help=(
            "fail when the array SpMU backend is not this much faster than the "
            "reference loop over the cold 128-variant grid"
        ),
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_runner.json"),
        help="where to write the benchmark record",
    )
    args = parser.parse_args(argv)
    scale = _parse_scale(args.scale)
    # Read the baseline up front: --output may overwrite the same file.
    baseline = json.loads(Path(args.baseline).read_text()) if args.baseline else None
    if baseline is not None and baseline.get("scale") != scale:
        print(
            f"baseline was recorded at scale {baseline.get('scale')}, not {scale}; "
            "the regression check would compare different workloads",
            file=sys.stderr,
        )
        return 2

    # Warm the in-process dataset-generation cache so every configuration
    # below measures profiling cost, not synthetic-matrix generation. The
    # returned profiles double as the costing benchmark's workload rows.
    profile_set = collect_profiles(scale=scale, workers=1, cache=False)

    with tempfile.TemporaryDirectory() as tmp_serial, tempfile.TemporaryDirectory() as tmp_par:
        uncached_s = _timed(scale=scale, workers=1, cache=False)
        cold_serial_s = _timed(scale=scale, workers=1, cache=ProfileCache(root=tmp_serial))
        warm_serial_s = _timed(scale=scale, workers=1, cache=ProfileCache(root=tmp_serial))
        cold_parallel_s = _timed(
            scale=scale, workers=args.workers, cache=ProfileCache(root=tmp_par)
        )
        reference_serial_s = (
            None
            if args.no_reference
            else _timed(scale=scale, workers=1, cache=False, backend="reference")
        )

    record = {
        "benchmark": "collect_profiles full grid (11 apps x 3 datasets)",
        "scale": scale,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "uncached_serial_s": round(uncached_s, 3),
        "cold_serial_s": round(cold_serial_s, 3),
        "warm_serial_s": round(warm_serial_s, 3),
        "cold_parallel_s": round(cold_parallel_s, 3),
        "reference_serial_s": (
            None if reference_serial_s is None else round(reference_serial_s, 3)
        ),
        "parallel_speedup": round(cold_serial_s / cold_parallel_s, 2),
        "warm_cache_speedup": round(cold_serial_s / warm_serial_s, 2),
        "vectorized_speedup": (
            None
            if reference_serial_s is None
            else round(reference_serial_s / uncached_s, 2)
        ),
    }
    costing = None
    if not args.no_costing:
        profiles = [profile_set.profiles[key] for key in sorted(profile_set.profiles)]
        costing = _bench_costing(profiles)
        record["costing"] = costing
    spmu = None
    if not args.no_spmu:
        spmu = _bench_spmu()
        record["spmu"] = spmu
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))

    failed = False
    if spmu is not None:
        if not spmu["identical"]:
            print(
                "REGRESSION: the array SpMU backend's throughputs diverged from "
                "the reference simulator",
                file=sys.stderr,
            )
            failed = True
        if spmu["speedup"] < args.min_spmu_speedup:
            print(
                f"REGRESSION: SpMU grid speedup {spmu['speedup']}x is below the "
                f"required {args.min_spmu_speedup}x "
                f"({spmu['reference_s']}s reference vs {spmu['array_s']}s array)",
                file=sys.stderr,
            )
            failed = True
    if costing is not None:
        if not costing["identical"]:
            print(
                "REGRESSION: estimate_cycles_batch diverged from the scalar "
                "estimate_cycles loop",
                file=sys.stderr,
            )
            failed = True
        if costing["batch_speedup"] < args.min_batch_speedup:
            print(
                f"REGRESSION: batched costing speedup {costing['batch_speedup']}x is "
                f"below the required {args.min_batch_speedup}x "
                f"({costing['scalar_s']}s scalar vs {costing['batch_s']}s batched)",
                file=sys.stderr,
            )
            failed = True
    if baseline is not None:
        budget = baseline["cold_serial_s"] * args.max_slowdown
        if cold_serial_s > budget:
            print(
                f"REGRESSION: cold_serial_s {cold_serial_s:.3f}s exceeds "
                f"{args.max_slowdown}x the baseline ({baseline['cold_serial_s']}s "
                f"at scale {baseline['scale']})",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"baseline check ok: {cold_serial_s:.3f}s <= {budget:.3f}s "
                f"({args.max_slowdown}x of {baseline['cold_serial_s']}s)"
            )
        baseline_spmu = baseline.get("spmu")
        if spmu is not None and baseline_spmu is not None:
            spmu_budget = baseline_spmu["array_s"] * args.max_slowdown
            if spmu["array_s"] > spmu_budget:
                print(
                    f"REGRESSION: SpMU array grid {spmu['array_s']:.3f}s exceeds "
                    f"{args.max_slowdown}x the baseline ({baseline_spmu['array_s']}s)",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"spmu check ok: {spmu['array_s']:.3f}s <= {spmu_budget:.3f}s "
                    f"({args.max_slowdown}x of {baseline_spmu['array_s']}s)"
                )
        baseline_costing = baseline.get("costing")
        if costing is not None and baseline_costing is not None:
            costing_budget = baseline_costing["batch_s"] * args.max_slowdown
            if costing["batch_s"] > costing_budget:
                print(
                    f"REGRESSION: batched costing {costing['batch_s']:.4f}s exceeds "
                    f"{args.max_slowdown}x the baseline ({baseline_costing['batch_s']}s)",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"costing check ok: {costing['batch_s']:.4f}s <= "
                    f"{costing_budget:.4f}s ({args.max_slowdown}x of "
                    f"{baseline_costing['batch_s']}s)"
                )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
