"""Benchmark the experiment runner: cache states, pool sizes, backends, costing.

Times full-grid ``collect_profiles`` wall time under five configurations --
cold serial, warm cache, cold parallel, cache-disabled serial, and the
per-element ``reference`` profiling backend (the pre-vectorization
behaviour) -- plus the platform-costing layer (the per-call
``estimate_cycles`` loop against ``estimate_cycles_batch`` over a
128-variant design-space grid) and the SpMU simulator layer (the reference
per-cycle loop against the lock-step array engine over a cold 128-variant
microbenchmark grid), and writes ``BENCH_runner.json`` at the repository
root to track the performance trajectory.

It also times the format substrate (the packed-word scan/convert/construct
grid: ``scan_batch`` against the element-at-a-time scan loop, the batched
``convert_many`` against its tile loop, and the vectorized bit-tree build
against the ``set()`` loop), recorded under ``formats``.

With ``--baseline`` the run additionally compares its cold vectorized time,
batched costing time, array SpMU grid time, and format-substrate batch time
against a committed record and fails (exit code 1) when any regressed by
more than ``--max-slowdown`` (the CI ``bench-smoke`` job's contract). The
costing, SpMU, and formats records are also gated unconditionally: each
batched path must be bit-identical to its reference and at least
``--min-batch-speedup`` / ``--min-spmu-speedup`` / ``--min-formats-speedup``
times faster.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py [--scale 1/16] [--workers 4]
    PYTHONPATH=src python benchmarks/bench_runner.py --no-reference \\
        --baseline BENCH_runner.json --output bench-ci.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro._compiled import HAS_NUMBA
from repro.apps.timing import (
    COSTING_BYTES_PER_CELL,
    estimate_cycles,
    estimate_cycles_batch,
    iter_cycles_batches,
)
from repro.config import MemoryTechnology, ShuffleMode, SpMUConfig
from repro.core.ordering import OrderingMode
from repro.core.spmu import effective_bank_throughput_batch
from repro.core.spmu_array import SpMUVariant
from repro.eval.experiments import collect_profiles
from repro.runtime.cache import ProfileCache
from repro.runtime.cli import _parse_scale
from repro.runtime.sweep import sweep


def _timed(**kwargs) -> float:
    start = time.perf_counter()
    collect_profiles(**kwargs)
    return time.perf_counter() - start


def _traced_peak_mb(fn) -> float:
    """Peak traced allocation (MiB) of one callable, in a clean trace.

    Timing passes stay untraced (tracemalloc adds per-allocation overhead);
    each section runs one extra pass under the tracer purely to record its
    peak working set.
    """
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024 * 1024)


def _bench_costing(profiles, batch_repeats: int = 3) -> dict:
    """Time the scalar estimate_cycles loop against the batched path.

    The grid sweeps structural and policy axes into 128 variants; the
    calibrated sub-models (SpMU throughput, merge efficiency) are warmed --
    and their equality verified cell by cell -- before timing, so both
    paths measure costing machinery rather than one-time microbenchmarks.
    """
    variants = sweep(
        lanes=(8, 16),
        banks=(16, 32),
        queue_depth=(8, 16),
        bank_mapping=("hash", "linear"),
        ordering=(OrderingMode.UNORDERED, OrderingMode.ADDRESS_ORDERED),
        memory=(MemoryTechnology.HBM2E, MemoryTechnology.DDR4),
        shuffle=(ShuffleMode.MRG1, ShuffleMode.NONE),
    )
    platforms = list(variants.values())

    warm = estimate_cycles_batch(profiles, platforms)

    start = time.perf_counter()
    identical = True
    for i, profile in enumerate(profiles):
        for j, platform in enumerate(platforms):
            cycles, _ = estimate_cycles(profile, platform)
            if cycles != warm.cycles[i, j]:
                identical = False
    scalar_s = time.perf_counter() - start

    batch_s = min(
        _timed_batch(profiles, platforms) for _ in range(max(1, batch_repeats))
    )
    peak_mb = _traced_peak_mb(lambda: estimate_cycles_batch(profiles, platforms))
    return {
        "variants": len(platforms),
        "profiles": len(profiles),
        "cells": len(platforms) * len(profiles),
        "scalar_s": round(scalar_s, 4),
        "batch_s": round(batch_s, 4),
        "batch_speedup": round(scalar_s / batch_s, 1),
        "peak_mb": round(peak_mb, 2),
        "identical": identical,
    }


def _timed_batch(profiles, platforms) -> float:
    start = time.perf_counter()
    estimate_cycles_batch(profiles, platforms)
    return time.perf_counter() - start


def _bench_formats() -> dict:
    """Time the format-substrate batch paths against the retained references.

    Three axes, mirroring the substrate's consumers:

    * ``scan`` -- :meth:`BitVectorScanner.scan_batch` against the
      element-at-a-time ``scan_reference`` loop, across densities and all
      three scan modes;
    * ``convert`` -- the batched :meth:`FormatConverter.convert_many`
      against the tile-at-a-time reference loop;
    * ``construct`` -- the vectorized :meth:`BitTree.from_indices` build
      against the object-at-a-time ``set()`` loop.

    Every batch result is checked element-for-element against its
    reference before timing is reported; ``identical`` covers all axes.
    """
    from repro.core.format_conversion import FormatConverter
    from repro.core.scanner import BitVectorScanner, ScanMode
    from repro.formats.bittree import BitTree
    from repro.formats.reference import bittree_from_indices_reference
    from repro.workloads.synthetic import sparse_bitvector

    identical = True

    # --- scan axis: density x mode grid of 4096-bit operand pairs -------- #
    scanner = BitVectorScanner()
    scan_cases = []
    for density in (0.01, 0.05, 0.2):
        for seed in range(4):
            a = sparse_bitvector(4096, density, seed=seed)
            b = sparse_bitvector(4096, density, seed=seed + 100)
            for mode in (ScanMode.INTERSECT, ScanMode.UNION, ScanMode.SINGLE):
                scan_cases.append((a, None if mode is ScanMode.SINGLE else b, mode))
    for a, b, mode in scan_cases:
        if scanner.scan_batch(a, b, mode).elements() != scanner.scan_reference(a, b, mode):
            identical = False

    def _scan_batch():
        for a, b, mode in scan_cases:
            scanner.scan_batch(a, b, mode)

    def _scan_reference():
        for a, b, mode in scan_cases:
            scanner.scan_reference(a, b, mode)

    # --- convert axis: 128 pointer tiles into 4096-bit bit-vectors ------- #
    converter = FormatConverter(lanes=16, word_bits=32)
    rng = np.random.default_rng(3)
    tiles = [
        np.sort(rng.choice(4096, size=48, replace=False))
        for _ in range(128)
    ]
    fast_vectors, fast_stats = converter.convert_many(4096, tiles)
    ref_vectors, ref_stats = converter.convert_many_reference(4096, tiles)
    if fast_stats != ref_stats or any(
        f != r for f, r in zip(fast_vectors, ref_vectors)
    ):
        identical = False

    def _convert_batch():
        converter.convert_many(4096, tiles)

    def _convert_reference():
        converter.convert_many_reference(4096, tiles)

    # --- construct axis: 65536-bit bit-trees across densities ------------ #
    construct_cases = []
    for density in (0.002, 0.01, 0.05):
        vector = sparse_bitvector(65536, density, seed=9)
        construct_cases.append((vector.indices, vector.values))
    for indices, values in construct_cases:
        fast = BitTree.from_indices(65536, indices, values)
        reference = bittree_from_indices_reference(65536, indices, values)
        if not (
            np.array_equal(fast.indices(), reference.indices())
            and np.array_equal(fast.words, reference.words)
            and np.array_equal(fast.values(), reference.values())
        ):
            identical = False

    def _construct_batch():
        for indices, values in construct_cases:
            BitTree.from_indices(65536, indices, values)

    def _construct_reference():
        for indices, values in construct_cases:
            bittree_from_indices_reference(65536, indices, values)

    def _best_of(fn, repeats=2):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    axes = {
        "scan": (_scan_batch, _scan_reference),
        "convert": (_convert_batch, _convert_reference),
        "construct": (_construct_batch, _construct_reference),
    }
    record: dict = {"identical": identical}
    batch_total = 0.0
    reference_total = 0.0
    for name, (batch_fn, reference_fn) in axes.items():
        batch_s = _best_of(batch_fn)
        reference_s = _best_of(reference_fn)
        batch_total += batch_s
        reference_total += reference_s
        record[name] = {
            "batch_s": round(batch_s, 4),
            "reference_s": round(reference_s, 4),
            "speedup": round(reference_s / batch_s, 1),
        }
    record["batch_s"] = round(batch_total, 4)
    record["reference_s"] = round(reference_total, 4)
    record["speedup"] = round(reference_total / batch_total, 1)

    def _all_batches():
        _scan_batch()
        _convert_batch()
        _construct_batch()

    record["peak_mb"] = round(_traced_peak_mb(_all_batches), 2)
    return record


def _bench_spmu() -> dict:
    """Time the cold 128-variant SpMU microbenchmark grid on both backends.

    The grid crosses the paper's Table 4 structural axes (queue depth,
    crossbar size, allocator priorities) with the Table 9/10 policy axes
    (ordering, bank mapping, allocator kind). The reference side runs the
    original per-cycle object loop variant by variant; the array side runs
    one lock-step :func:`effective_bank_throughput_batch` pass. Both are
    cold: the persistent throughput store is disabled and the in-process
    memo cleared, so the numbers measure simulation, not caching -- and the
    resulting throughputs must be bit-identical.
    """
    import repro.core.spmu as spmu_module

    variants = [
        SpMUVariant(
            ordering=ordering,
            bank_mapping=mapping,
            allocator_kind=allocator,
            config=SpMUConfig(
                queue_depth=depth,
                crossbar_inputs=crossbar,
                allocator_priorities=priorities,
            ),
        )
        for ordering, mapping, allocator, depth, crossbar, priorities in itertools.product(
            list(OrderingMode),
            ("hash", "linear"),
            ("separable", "greedy"),
            (8, 16),
            (16, 32),
            (1, 3),
        )
    ]
    saved_disable = os.environ.get("REPRO_THROUGHPUT_CACHE_DISABLE")
    os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"] = "1"
    try:
        array_s = reference_s = float("inf")
        array_values = reference_values = None
        for _ in range(2):  # best-of-2, like the costing benchmark
            spmu_module._THROUGHPUT_CACHE.clear()
            start = time.perf_counter()
            array_values = effective_bank_throughput_batch(variants)
            array_s = min(array_s, time.perf_counter() - start)
            start = time.perf_counter()
            reference_values = effective_bank_throughput_batch(
                variants, backend="reference"
            )
            reference_s = min(reference_s, time.perf_counter() - start)
        spmu_module._THROUGHPUT_CACHE.clear()
        peak_mb = _traced_peak_mb(
            lambda: effective_bank_throughput_batch(variants)
        )
    finally:
        spmu_module._THROUGHPUT_CACHE.clear()
        if saved_disable is None:
            del os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"]
        else:
            os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"] = saved_disable
    return {
        "variants": len(variants),
        "vectors": spmu_module._THROUGHPUT_VECTORS,
        "reference_s": round(reference_s, 3),
        "array_s": round(array_s, 3),
        "speedup": round(reference_s / array_s, 1),
        "peak_mb": round(peak_mb, 2),
        "identical": bool(
            all(a == r for a, r in zip(array_values, reference_values))
        ),
    }


def _bench_chunked(profiles) -> dict:
    """Prove a 4096-variant costing grid streams flat-memory under budget.

    The grid crosses ten structural/policy axes into 4096 platform variants
    (64 distinct SpMU calibration microbenchmarks, prefetched once so every
    pass measures costing, not simulation). Three comparisons:

    * ``identical`` -- the chunked :func:`estimate_cycles_batch` (explicit
      byte budget sized for 128-variant chunks) reproduces the unchunked
      grid bit for bit, cycles and every stall category, and the streaming
      :func:`iter_cycles_batches` fold reproduces the per-variant
      geometric means float for float;
    * ``peak_ratio`` -- the traced peak of streaming all 4096 variants
      under the budget against the traced peak of a plain 128-variant run;
      flat-memory streaming keeps the ratio near 1 (the CI gate allows
      ``--max-peak-ratio``);
    * ``spmu_numba_speedup`` -- with numba installed, the compiled
      per-cycle SpMU kernel against the lock-step engine over a cold
      32-variant microbenchmark grid (``None`` when numba is absent).
    """
    import repro.core.spmu as spmu_module
    from repro.runtime.dse import prefill_throughputs
    from repro.sim.stats import geometric_mean

    variants = sweep(
        lanes=(8, 16),
        banks=(16, 32),
        queue_depth=(8, 16),
        crossbar_inputs=(16, 32),
        compute_units=(49, 100, 196, 400),
        bank_mapping=("hash", "linear"),
        allocator=("separable", "greedy"),
        ordering=tuple(OrderingMode),
        memory=(MemoryTechnology.HBM2E, MemoryTechnology.DDR4),
        shuffle=(ShuffleMode.MRG1, ShuffleMode.NONE),
    )
    platforms = list(variants.values())
    small = platforms[:128]
    budget = 128 * len(profiles) * COSTING_BYTES_PER_CELL

    saved_disable = os.environ.get("REPRO_THROUGHPUT_CACHE_DISABLE")
    os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"] = "1"
    try:
        prefill_throughputs(platforms)

        start = time.perf_counter()
        full = estimate_cycles_batch(profiles, platforms)
        unchunked_s = time.perf_counter() - start

        start = time.perf_counter()
        chunked = estimate_cycles_batch(profiles, platforms, memory_budget=budget)
        chunked_s = time.perf_counter() - start

        identical = np.array_equal(full.cycles, chunked.cycles) and all(
            np.array_equal(full.categories[name], chunked.categories[name])
            for name in full.categories
        )

        gmean_full = [
            geometric_mean([float(c) for c in full.cycles[:, j]])
            for j in range(len(platforms))
        ]

        def _streamed_gmeans():
            gmeans = []
            for _, part in iter_cycles_batches(
                profiles, platforms, memory_budget=budget
            ):
                gmeans.extend(
                    geometric_mean([float(c) for c in part.cycles[:, j]])
                    for j in range(part.cycles.shape[1])
                )
                # Release this chunk before the generator builds the next
                # one, keeping the live set at one chunk.
                del part
            return gmeans

        identical = identical and _streamed_gmeans() == gmean_full

        peak_small_mb = _traced_peak_mb(
            lambda: estimate_cycles_batch(profiles, small)
        )
        peak_streamed_mb = _traced_peak_mb(_streamed_gmeans)

        spmu_numba_speedup = None
        if HAS_NUMBA:
            micro = [
                SpMUVariant(
                    ordering=ordering,
                    bank_mapping=mapping,
                    allocator_kind=allocator,
                    config=SpMUConfig(queue_depth=depth),
                )
                for ordering, mapping, allocator, depth in itertools.product(
                    list(OrderingMode),
                    ("hash", "linear"),
                    ("separable", "greedy"),
                    (8, 16),
                )
            ]
            # Warm the JIT before timing the compiled path.
            spmu_module._THROUGHPUT_CACHE.clear()
            effective_bank_throughput_batch(micro, backend="numba")
            numpy_s = numba_s = float("inf")
            for _ in range(2):
                spmu_module._THROUGHPUT_CACHE.clear()
                start = time.perf_counter()
                effective_bank_throughput_batch(micro)
                numpy_s = min(numpy_s, time.perf_counter() - start)
                spmu_module._THROUGHPUT_CACHE.clear()
                start = time.perf_counter()
                effective_bank_throughput_batch(micro, backend="numba")
                numba_s = min(numba_s, time.perf_counter() - start)
            spmu_numba_speedup = round(numpy_s / numba_s, 1)
    finally:
        spmu_module._THROUGHPUT_CACHE.clear()
        if saved_disable is None:
            del os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"]
        else:
            os.environ["REPRO_THROUGHPUT_CACHE_DISABLE"] = saved_disable

    return {
        "variants": len(platforms),
        "profiles": len(profiles),
        "memory_budget_bytes": budget,
        "chunk_platforms": budget // (len(profiles) * COSTING_BYTES_PER_CELL),
        "unchunked_s": round(unchunked_s, 3),
        "chunked_s": round(chunked_s, 3),
        "chunked_slowdown": round(chunked_s / unchunked_s, 2),
        "peak_small_mb": round(peak_small_mb, 2),
        "peak_streamed_mb": round(peak_streamed_mb, 2),
        "peak_ratio": round(peak_streamed_mb / peak_small_mb, 2),
        "numba_available": HAS_NUMBA,
        "spmu_numba_speedup": spmu_numba_speedup,
        "identical": bool(identical),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="1/16", help="dataset scale (default 1/16)")
    parser.add_argument("--workers", type=int, default=4, help="parallel pool size")
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the (slow) reference-backend pass",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed benchmark record to regression-check the cold vectorized time against",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="fail when cold_serial_s exceeds baseline by this factor (default 2.0)",
    )
    parser.add_argument(
        "--no-costing",
        action="store_true",
        help="skip the batched-costing benchmark",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=5.0,
        help="fail when batched costing is not this much faster than the scalar loop",
    )
    parser.add_argument(
        "--no-spmu",
        action="store_true",
        help="skip the SpMU microbenchmark-grid benchmark",
    )
    parser.add_argument(
        "--no-formats",
        action="store_true",
        help="skip the format-substrate (scan/convert/construct) benchmark",
    )
    parser.add_argument(
        "--min-formats-speedup",
        type=float,
        default=3.0,
        help=(
            "fail when the format-substrate batch paths are not this much "
            "faster than the retained object-at-a-time references"
        ),
    )
    parser.add_argument(
        "--min-spmu-speedup",
        type=float,
        default=6.0,
        help=(
            "fail when the array SpMU backend is not this much faster than the "
            "reference loop over the cold 128-variant grid"
        ),
    )
    parser.add_argument(
        "--no-chunked",
        action="store_true",
        help="skip the memory-bounded chunked-execution benchmark",
    )
    parser.add_argument(
        "--max-peak-ratio",
        type=float,
        default=1.5,
        help=(
            "fail when streaming the 4096-variant grid under budget peaks at "
            "more than this multiple of a plain 128-variant run (default 1.5)"
        ),
    )
    parser.add_argument(
        "--min-numba-speedup",
        type=float,
        default=3.0,
        help=(
            "fail when the compiled SpMU kernel is not this much faster than "
            "the lock-step engine (only checked when numba is installed)"
        ),
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_runner.json"),
        help="where to write the benchmark record",
    )
    args = parser.parse_args(argv)
    scale = _parse_scale(args.scale)
    # An ambient budget would silently chunk every section; the chunked
    # section sets its own explicit budget where one is wanted.
    os.environ.pop("REPRO_MEMORY_BUDGET", None)
    # Read the baseline up front: --output may overwrite the same file.
    baseline = json.loads(Path(args.baseline).read_text()) if args.baseline else None
    if baseline is not None and baseline.get("scale") != scale:
        print(
            f"baseline was recorded at scale {baseline.get('scale')}, not {scale}; "
            "the regression check would compare different workloads",
            file=sys.stderr,
        )
        return 2

    # Warm the in-process dataset-generation cache so every configuration
    # below measures profiling cost, not synthetic-matrix generation. The
    # returned profiles double as the costing benchmark's workload rows.
    profile_set = collect_profiles(scale=scale, workers=1, cache=False)

    with tempfile.TemporaryDirectory() as tmp_serial, tempfile.TemporaryDirectory() as tmp_par:
        uncached_s = _timed(scale=scale, workers=1, cache=False)
        cold_serial_s = _timed(scale=scale, workers=1, cache=ProfileCache(root=tmp_serial))
        warm_serial_s = _timed(scale=scale, workers=1, cache=ProfileCache(root=tmp_serial))
        cold_parallel_s = _timed(
            scale=scale, workers=args.workers, cache=ProfileCache(root=tmp_par)
        )
        reference_serial_s = (
            None
            if args.no_reference
            else _timed(scale=scale, workers=1, cache=False, backend="reference")
        )

    record = {
        "benchmark": "collect_profiles full grid (11 apps x 3 datasets)",
        "scale": scale,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "uncached_serial_s": round(uncached_s, 3),
        "cold_serial_s": round(cold_serial_s, 3),
        "warm_serial_s": round(warm_serial_s, 3),
        "cold_parallel_s": round(cold_parallel_s, 3),
        "reference_serial_s": (
            None if reference_serial_s is None else round(reference_serial_s, 3)
        ),
        "parallel_speedup": round(cold_serial_s / cold_parallel_s, 2),
        "warm_cache_speedup": round(cold_serial_s / warm_serial_s, 2),
        "vectorized_speedup": (
            None
            if reference_serial_s is None
            else round(reference_serial_s / uncached_s, 2)
        ),
    }
    costing = None
    if not args.no_costing:
        profiles = [profile_set.profiles[key] for key in sorted(profile_set.profiles)]
        costing = _bench_costing(profiles)
        record["costing"] = costing
    spmu = None
    if not args.no_spmu:
        spmu = _bench_spmu()
        record["spmu"] = spmu
    formats = None
    if not args.no_formats:
        formats = _bench_formats()
        record["formats"] = formats
    chunked = None
    if not args.no_chunked:
        profiles = [profile_set.profiles[key] for key in sorted(profile_set.profiles)]
        chunked = _bench_chunked(profiles)
        record["chunked"] = chunked
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))

    failed = False
    if chunked is not None:
        if not chunked["identical"]:
            print(
                "REGRESSION: memory-bounded chunked costing diverged from the "
                "unchunked grid",
                file=sys.stderr,
            )
            failed = True
        if chunked["peak_ratio"] > args.max_peak_ratio:
            print(
                f"REGRESSION: streaming the {chunked['variants']}-variant grid "
                f"peaked at {chunked['peak_ratio']}x the 128-variant run "
                f"(limit {args.max_peak_ratio}x; "
                f"{chunked['peak_streamed_mb']}MB vs {chunked['peak_small_mb']}MB)",
                file=sys.stderr,
            )
            failed = True
        if (
            chunked["spmu_numba_speedup"] is not None
            and chunked["spmu_numba_speedup"] < args.min_numba_speedup
        ):
            print(
                f"REGRESSION: compiled SpMU kernel speedup "
                f"{chunked['spmu_numba_speedup']}x is below the required "
                f"{args.min_numba_speedup}x",
                file=sys.stderr,
            )
            failed = True
    if formats is not None:
        if not formats["identical"]:
            print(
                "REGRESSION: a format-substrate batch path diverged from its "
                "object-at-a-time reference",
                file=sys.stderr,
            )
            failed = True
        if formats["speedup"] < args.min_formats_speedup:
            print(
                f"REGRESSION: format-substrate speedup {formats['speedup']}x is "
                f"below the required {args.min_formats_speedup}x "
                f"({formats['reference_s']}s reference vs {formats['batch_s']}s batch)",
                file=sys.stderr,
            )
            failed = True
    if spmu is not None:
        if not spmu["identical"]:
            print(
                "REGRESSION: the array SpMU backend's throughputs diverged from "
                "the reference simulator",
                file=sys.stderr,
            )
            failed = True
        if spmu["speedup"] < args.min_spmu_speedup:
            print(
                f"REGRESSION: SpMU grid speedup {spmu['speedup']}x is below the "
                f"required {args.min_spmu_speedup}x "
                f"({spmu['reference_s']}s reference vs {spmu['array_s']}s array)",
                file=sys.stderr,
            )
            failed = True
    if costing is not None:
        if not costing["identical"]:
            print(
                "REGRESSION: estimate_cycles_batch diverged from the scalar "
                "estimate_cycles loop",
                file=sys.stderr,
            )
            failed = True
        if costing["batch_speedup"] < args.min_batch_speedup:
            print(
                f"REGRESSION: batched costing speedup {costing['batch_speedup']}x is "
                f"below the required {args.min_batch_speedup}x "
                f"({costing['scalar_s']}s scalar vs {costing['batch_s']}s batched)",
                file=sys.stderr,
            )
            failed = True
    if baseline is not None:
        budget = baseline["cold_serial_s"] * args.max_slowdown
        if cold_serial_s > budget:
            print(
                f"REGRESSION: cold_serial_s {cold_serial_s:.3f}s exceeds "
                f"{args.max_slowdown}x the baseline ({baseline['cold_serial_s']}s "
                f"at scale {baseline['scale']})",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"baseline check ok: {cold_serial_s:.3f}s <= {budget:.3f}s "
                f"({args.max_slowdown}x of {baseline['cold_serial_s']}s)"
            )
        baseline_spmu = baseline.get("spmu")
        if spmu is not None and baseline_spmu is not None:
            spmu_budget = baseline_spmu["array_s"] * args.max_slowdown
            if spmu["array_s"] > spmu_budget:
                print(
                    f"REGRESSION: SpMU array grid {spmu['array_s']:.3f}s exceeds "
                    f"{args.max_slowdown}x the baseline ({baseline_spmu['array_s']}s)",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"spmu check ok: {spmu['array_s']:.3f}s <= {spmu_budget:.3f}s "
                    f"({args.max_slowdown}x of {baseline_spmu['array_s']}s)"
                )
        baseline_formats = baseline.get("formats")
        if formats is not None and baseline_formats is not None:
            formats_budget = baseline_formats["batch_s"] * args.max_slowdown
            if formats["batch_s"] > formats_budget:
                print(
                    f"REGRESSION: format-substrate batch {formats['batch_s']:.4f}s "
                    f"exceeds {args.max_slowdown}x the baseline "
                    f"({baseline_formats['batch_s']}s)",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"formats check ok: {formats['batch_s']:.4f}s <= "
                    f"{formats_budget:.4f}s ({args.max_slowdown}x of "
                    f"{baseline_formats['batch_s']}s)"
                )
        baseline_chunked = baseline.get("chunked")
        if chunked is not None and baseline_chunked is not None:
            chunked_budget = baseline_chunked["chunked_s"] * args.max_slowdown
            if chunked["chunked_s"] > chunked_budget:
                print(
                    f"REGRESSION: chunked costing {chunked['chunked_s']:.3f}s "
                    f"exceeds {args.max_slowdown}x the baseline "
                    f"({baseline_chunked['chunked_s']}s)",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"chunked check ok: {chunked['chunked_s']:.3f}s <= "
                    f"{chunked_budget:.3f}s ({args.max_slowdown}x of "
                    f"{baseline_chunked['chunked_s']}s)"
                )
        baseline_costing = baseline.get("costing")
        if costing is not None and baseline_costing is not None:
            costing_budget = baseline_costing["batch_s"] * args.max_slowdown
            if costing["batch_s"] > costing_budget:
                print(
                    f"REGRESSION: batched costing {costing['batch_s']:.4f}s exceeds "
                    f"{args.max_slowdown}x the baseline ({baseline_costing['batch_s']}s)",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"costing check ok: {costing['batch_s']:.4f}s <= "
                    f"{costing_budget:.4f}s ({args.max_slowdown}x of "
                    f"{baseline_costing['batch_s']}s)"
                )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
