"""Benchmark the experiment runner: cache states, pool sizes, and backends.

Times full-grid ``collect_profiles`` wall time under five configurations --
cold serial, warm cache, cold parallel, cache-disabled serial, and the
per-element ``reference`` profiling backend (the pre-vectorization
behaviour) -- and writes ``BENCH_runner.json`` at the repository root to
track the performance trajectory.

With ``--baseline`` the run additionally compares its cold vectorized time
against a committed record and fails (exit code 1) when it regressed by
more than ``--max-slowdown`` (the CI ``bench-smoke`` job's contract).

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py [--scale 1/16] [--workers 4]
    PYTHONPATH=src python benchmarks/bench_runner.py --no-reference \\
        --baseline BENCH_runner.json --output bench-ci.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.eval.experiments import collect_profiles
from repro.runtime.cache import ProfileCache


def _timed(**kwargs) -> float:
    start = time.perf_counter()
    collect_profiles(**kwargs)
    return time.perf_counter() - start


def _parse_scale(text: str) -> float:
    if "/" in text:
        numerator, _, denominator = text.partition("/")
        return float(numerator) / float(denominator)
    return float(text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="1/16", help="dataset scale (default 1/16)")
    parser.add_argument("--workers", type=int, default=4, help="parallel pool size")
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the (slow) reference-backend pass",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed benchmark record to regression-check the cold vectorized time against",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="fail when cold_serial_s exceeds baseline by this factor (default 2.0)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_runner.json"),
        help="where to write the benchmark record",
    )
    args = parser.parse_args(argv)
    scale = _parse_scale(args.scale)
    # Read the baseline up front: --output may overwrite the same file.
    baseline = json.loads(Path(args.baseline).read_text()) if args.baseline else None
    if baseline is not None and baseline.get("scale") != scale:
        print(
            f"baseline was recorded at scale {baseline.get('scale')}, not {scale}; "
            "the regression check would compare different workloads",
            file=sys.stderr,
        )
        return 2

    # Warm the in-process dataset-generation cache so every configuration
    # below measures profiling cost, not synthetic-matrix generation.
    collect_profiles(scale=scale, workers=1, cache=False)

    with tempfile.TemporaryDirectory() as tmp_serial, tempfile.TemporaryDirectory() as tmp_par:
        uncached_s = _timed(scale=scale, workers=1, cache=False)
        cold_serial_s = _timed(scale=scale, workers=1, cache=ProfileCache(root=tmp_serial))
        warm_serial_s = _timed(scale=scale, workers=1, cache=ProfileCache(root=tmp_serial))
        cold_parallel_s = _timed(
            scale=scale, workers=args.workers, cache=ProfileCache(root=tmp_par)
        )
        reference_serial_s = (
            None
            if args.no_reference
            else _timed(scale=scale, workers=1, cache=False, backend="reference")
        )

    record = {
        "benchmark": "collect_profiles full grid (11 apps x 3 datasets)",
        "scale": scale,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "uncached_serial_s": round(uncached_s, 3),
        "cold_serial_s": round(cold_serial_s, 3),
        "warm_serial_s": round(warm_serial_s, 3),
        "cold_parallel_s": round(cold_parallel_s, 3),
        "reference_serial_s": (
            None if reference_serial_s is None else round(reference_serial_s, 3)
        ),
        "parallel_speedup": round(cold_serial_s / cold_parallel_s, 2),
        "warm_cache_speedup": round(cold_serial_s / warm_serial_s, 2),
        "vectorized_speedup": (
            None
            if reference_serial_s is None
            else round(reference_serial_s / uncached_s, 2)
        ),
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))

    if baseline is not None:
        budget = baseline["cold_serial_s"] * args.max_slowdown
        if cold_serial_s > budget:
            print(
                f"REGRESSION: cold_serial_s {cold_serial_s:.3f}s exceeds "
                f"{args.max_slowdown}x the baseline ({baseline['cold_serial_s']}s "
                f"at scale {baseline['scale']})",
                file=sys.stderr,
            )
            return 1
        print(
            f"baseline check ok: {cold_serial_s:.3f}s <= {budget:.3f}s "
            f"({args.max_slowdown}x of {baseline['cold_serial_s']}s)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
